//! **Nested Merge** (§4.2): merging a new version into the archive.
//!
//! The algorithm recursively pairs archive nodes with version nodes that
//! have the same *label* (tag + key value), starting from the root:
//!
//! * paired nodes (`XY`) are merged — the archive node's timestamp is
//!   augmented with the new version number `i` and the recursion descends;
//! * archive-only nodes (`X′`) are *terminated*: if they were inheriting
//!   their timestamp they now get an explicit one excluding `i`;
//! * version-only nodes (`Y′`) are copied into the archive with
//!   timestamp `{i}`.
//!
//! At **frontier nodes** the key structure runs out, so matching switches
//! to value equality: contents that differ across versions are held in
//! `<T>` *stamp* alternatives (Fig 8), or woven SCCS-style under the
//! "further compaction" mode (Fig 10, implemented in [`crate::weave`]).
//!
//! Children on both sides are sorted by the label order `≤lab` (tag, then
//! key arity, then key-path names, then key-path values under `≤v`) and
//! paired by a single merge pass, giving the paper's `O(αN log N)` bound.
//!
//! Above the frontier, children not covered by any key (mixed content,
//! schema drift) fall back to whole-value matching — the "conventional diff
//! techniques" escape hatch of §3, in its simplest form.

use std::cmp::Ordering;
use std::collections::HashMap;

use xarch_keys::{annotate, Annotations, KeyValue, NodeClass};
use xarch_xml::canon::canonical;
use xarch_xml::{Document, NodeId, NodeKind};

use crate::archive::{AKind, ANode, ANodeId, Archive, Compaction, MergeError};
use crate::timeset::TimeSet;
use crate::weave::weave_frontier;

/// A child label: tag name plus key value (the paper's
/// `l{p1=v1, ..., pk=vk}`).
#[derive(Debug, Clone)]
pub(crate) struct Label {
    pub tag: String,
    pub key: KeyValue,
}

impl Label {
    pub(crate) fn cmp(&self, other: &Label) -> Ordering {
        self.tag
            .cmp(&other.tag)
            .then_with(|| self.key.cmp_parts(&other.key))
    }
}

impl Archive {
    /// Annotates `doc` against the archive's key spec and merges it as the
    /// next version. Returns the assigned version number.
    pub fn add_version(&mut self, doc: &Document) -> Result<u32, MergeError> {
        let ann = annotate(doc, self.spec())?;
        self.add_annotated(doc, &ann)
    }

    /// Merges an already-annotated version (callers that annotate once and
    /// reuse, e.g. the chunked archiver, use this entry point).
    pub fn add_annotated(&mut self, doc: &Document, ann: &Annotations) -> Result<u32, MergeError> {
        if !ann.is_keyed(doc.root()) {
            return Err(MergeError::UnkeyedRoot(doc.tag_name(doc.root()).to_owned()));
        }
        let i = self.bump_version();
        let root = self.root();
        let t = self
            .node_mut(root)
            .time
            .as_mut()
            .expect("root carries a timestamp");
        t.insert(i);
        let t_cur = t.clone();
        // The paper pairs the archive root rA with a virtual root rD whose
        // only child is the document root; equivalently, merge the child
        // lists directly.
        merge_children(self, root, doc, ann, &[doc.root()], &t_cur, i);
        Ok(i)
    }

    /// Archives an *empty* database as the next version (§2's footnote:
    /// `root` keeps `t=[1-5]` while `db` ends at `t=[1-4]`).
    pub fn add_empty_version(&mut self) -> u32 {
        let i = self.bump_version();
        let root = self.root();
        let t = self
            .node_mut(root)
            .time
            .as_mut()
            .expect("root carries a timestamp");
        t.insert(i);
        let t_cur = t.clone();
        for c in self.children(root).to_vec() {
            terminate(self, c, &t_cur, i);
        }
        i
    }
}

/// The recursive core: merge version node `y` into archive node `x`
/// (their labels are equal by construction).
fn nested_merge(
    a: &mut Archive,
    x: ANodeId,
    doc: &Document,
    ann: &Annotations,
    y: NodeId,
    inherited: &TimeSet,
    i: u32,
) {
    // "If time(x) exists, then add i to time(x), let T be time(x)."
    let t_cur = match a.node_mut(x).time.as_mut() {
        Some(t) => {
            t.insert(i);
            t.clone()
        }
        None => inherited.clone(),
    };
    if ann.is_frontier(y) {
        frontier_merge(a, x, doc, ann, y, &t_cur, i);
    } else {
        let y_children = doc.children(y).to_vec();
        merge_children(a, x, doc, ann, &y_children, &t_cur, i);
    }
}

/// Partitions the children of archive node `x` and the version child list
/// into XY / X′ / Y′ and acts on each set.
pub(crate) fn merge_children(
    a: &mut Archive,
    x: ANodeId,
    doc: &Document,
    ann: &Annotations,
    y_children: &[NodeId],
    t_cur: &TimeSet,
    i: u32,
) {
    // Split both child lists into keyed and other nodes.
    let mut kx: Vec<(Label, ANodeId)> = Vec::new();
    let mut ox: Vec<ANodeId> = Vec::new();
    for &c in a.children(x) {
        let n = a.node(c);
        debug_assert!(
            !matches!(n.kind, AKind::Stamp),
            "stamp nodes occur only beneath frontier nodes"
        );
        match (&n.kind, &n.key) {
            (AKind::Element(s), Some(k)) => kx.push((
                Label {
                    tag: a.syms().resolve(*s).to_owned(),
                    key: k.clone(),
                },
                c,
            )),
            _ => ox.push(c),
        }
    }
    let mut ky: Vec<(Label, NodeId)> = Vec::new();
    let mut oy: Vec<NodeId> = Vec::new();
    for &c in y_children {
        match (&doc.node(c).kind, ann.key(c)) {
            (NodeKind::Element(s), Some(k)) => ky.push((
                Label {
                    tag: doc.syms().resolve(*s).to_owned(),
                    key: k.clone(),
                },
                c,
            )),
            _ => oy.push(c),
        }
    }
    kx.sort_by(|p, q| p.0.cmp(&q.0));
    ky.sort_by(|p, q| p.0.cmp(&q.0));

    // Merge pass over the two sorted lists.
    let (mut ix, mut iy) = (0usize, 0usize);
    while ix < kx.len() && iy < ky.len() {
        match kx[ix].0.cmp(&ky[iy].0) {
            Ordering::Equal => {
                // action (a): recursive merge
                nested_merge(a, kx[ix].1, doc, ann, ky[iy].1, t_cur, i);
                ix += 1;
                iy += 1;
            }
            Ordering::Less => {
                // action (b): terminate the archive-only node
                terminate(a, kx[ix].1, t_cur, i);
                ix += 1;
            }
            Ordering::Greater => {
                // action (c): new subtree
                insert_new(a, x, doc, ann, ky[iy].1, i);
                iy += 1;
            }
        }
    }
    for (_, xc) in &kx[ix..] {
        terminate(a, *xc, t_cur, i);
    }
    for (_, yc) in &ky[iy..] {
        insert_new(a, x, doc, ann, *yc, i);
    }

    match_unkeyed(a, x, &ox, doc, ann, &oy, t_cur, i);
}

/// Action (b): "If time(x′) does not exist, then let time(x′) be T − {i}."
pub(crate) fn terminate(a: &mut Archive, xc: ANodeId, t_cur: &TimeSet, i: u32) {
    if a.node(xc).time.is_none() {
        let mut t = t_cur.clone();
        t.remove(i);
        a.node_mut(xc).time = Some(t);
    }
}

/// Action (c): copy a version subtree into the archive with timestamp `{i}`.
fn insert_new(
    a: &mut Archive,
    parent: ANodeId,
    doc: &Document,
    ann: &Annotations,
    y: NodeId,
    i: u32,
) {
    let id = copy_subtree(a, doc, ann, y, parent);
    a.node_mut(id).time = Some(TimeSet::from_version(i));
}

/// Deep-copies a version subtree into the archive, carrying over key values
/// and node classes so future merges need not re-annotate the archive.
pub(crate) fn copy_subtree(
    a: &mut Archive,
    doc: &Document,
    ann: &Annotations,
    y: NodeId,
    parent: ANodeId,
) -> ANodeId {
    let node = match &doc.node(y).kind {
        NodeKind::Element(s) => {
            let tag = a.intern(doc.syms().resolve(*s));
            let attrs = doc
                .attrs(y)
                .iter()
                .map(|(s, v)| (doc.syms().resolve(*s).to_owned(), v.clone()))
                .collect::<Vec<_>>();
            let attrs = attrs.into_iter().map(|(n, v)| (a.intern(&n), v)).collect();
            ANode {
                kind: AKind::Element(tag),
                parent: None,
                children: Vec::new(),
                attrs,
                time: None,
                key: ann.key(y).cloned(),
                class: ann.class(y),
            }
        }
        NodeKind::Text(t) => ANode {
            kind: AKind::Text(t.clone()),
            parent: None,
            children: Vec::new(),
            attrs: Vec::new(),
            time: None,
            key: None,
            class: ann.class(y),
        },
    };
    let id = a.push_node(parent, node);
    for &c in doc.children(y) {
        copy_subtree(a, doc, ann, c, id);
    }
    id
}

/// Frontier handling (§4.2): beneath the deepest keyed nodes, contents are
/// matched by value.
fn frontier_merge(
    a: &mut Archive,
    x: ANodeId,
    doc: &Document,
    ann: &Annotations,
    y: NodeId,
    t_cur: &TimeSet,
    i: u32,
) {
    if a.compaction() == Compaction::Weave {
        weave_frontier(a, x, doc, ann, y, t_cur, i);
        return;
    }
    let y_children = doc.children(y).to_vec();
    let has_stamps = a
        .children(x)
        .iter()
        .any(|&c| matches!(a.node(c).kind, AKind::Stamp));
    if !has_stamps {
        // "If every node in children(x) is not a timestamp node":
        if !content_equals(a, a.children(x), doc, &y_children) {
            // split into two alternatives t1 = T−{i}, t2 = {i}
            let old: Vec<ANodeId> = std::mem::take(&mut a.node_mut(x).children);
            let mut t_old = t_cur.clone();
            t_old.remove(i);
            let t1 = a.alloc_detached(ANode {
                kind: AKind::Stamp,
                parent: None,
                children: Vec::new(),
                attrs: Vec::new(),
                time: Some(t_old),
                key: None,
                class: NodeClass::BeyondFrontier,
            });
            for c in old {
                a.attach(t1, c);
            }
            a.attach(x, t1);
            push_alternative(a, x, doc, ann, &y_children, i);
        }
        // equal contents: nothing to do, children keep inheriting
    } else {
        // find an existing alternative with value-equal content
        let stamp = a.children(x).to_vec().into_iter().find(|&sc| {
            matches!(a.node(sc).kind, AKind::Stamp)
                && content_equals(a, a.children(sc), doc, &y_children)
        });
        match stamp {
            Some(sc) => {
                a.node_mut(sc)
                    .time
                    .as_mut()
                    .expect("stamps carry timestamps")
                    .insert(i);
            }
            None => push_alternative(a, x, doc, ann, &y_children, i),
        }
    }
}

/// Appends a new `<T t="i">` alternative holding a copy of `y_children`.
fn push_alternative(
    a: &mut Archive,
    x: ANodeId,
    doc: &Document,
    ann: &Annotations,
    y_children: &[NodeId],
    i: u32,
) {
    let t2 = a.alloc_detached(ANode {
        kind: AKind::Stamp,
        parent: None,
        children: Vec::new(),
        attrs: Vec::new(),
        time: Some(TimeSet::from_version(i)),
        key: None,
        class: NodeClass::BeyondFrontier,
    });
    for &c in y_children {
        copy_subtree(a, doc, ann, c, t2);
    }
    a.attach(x, t2);
}

/// Fallback matching for children not covered by keys: pair archive and
/// version children with value-equal subtrees; augment matched timestamps,
/// terminate unmatched archive children, insert unmatched version children.
#[allow(clippy::too_many_arguments)]
fn match_unkeyed(
    a: &mut Archive,
    x: ANodeId,
    ox: &[ANodeId],
    doc: &Document,
    ann: &Annotations,
    oy: &[NodeId],
    t_cur: &TimeSet,
    i: u32,
) {
    if ox.is_empty() && oy.is_empty() {
        return;
    }
    let mut by_canon: HashMap<String, Vec<ANodeId>> = HashMap::new();
    for &xc in ox {
        by_canon.entry(canonical_anode(a, xc)).or_default().push(xc);
    }
    for &yc in oy {
        let cy = canonical(doc, yc);
        let matched = by_canon.get_mut(&cy).and_then(|v| v.pop());
        match matched {
            Some(xc) => {
                if let Some(t) = a.node_mut(xc).time.as_mut() {
                    t.insert(i);
                }
                // time == None: inherits, which already includes i
            }
            None => insert_new(a, x, doc, ann, yc, i),
        }
    }
    for (_, rest) in by_canon {
        for xc in rest {
            terminate(a, xc, t_cur, i);
        }
    }
}

/// Canonical form of an archive subtree (no stamps may occur inside).
pub(crate) fn canonical_anode(a: &Archive, id: ANodeId) -> String {
    let mut out = String::new();
    canonical_anode_into(a, id, &mut out);
    out
}

fn canonical_anode_into(a: &Archive, id: ANodeId, out: &mut String) {
    use xarch_xml::escape::{escape_attr_into, escape_text_into};
    match &a.node(id).kind {
        AKind::Text(t) => escape_text_into(t, out),
        AKind::Element(s) => {
            let tag = a.syms().resolve(*s).to_owned();
            out.push('<');
            out.push_str(&tag);
            let mut attrs: Vec<(&str, &str)> = a
                .node(id)
                .attrs
                .iter()
                .map(|(s, v)| (a.syms().resolve(*s), v.as_str()))
                .collect();
            attrs.sort_unstable();
            for (n, v) in attrs {
                out.push(' ');
                out.push_str(n);
                out.push_str("=\"");
                escape_attr_into(v, out);
                out.push('"');
            }
            out.push('>');
            for &c in a.children(id) {
                canonical_anode_into(a, c, out);
            }
            out.push_str("</");
            out.push_str(&tag);
            out.push('>');
        }
        AKind::Stamp => {
            debug_assert!(false, "canonical form of a stamp node is undefined");
        }
    }
}

/// Value equality between an archive child list (plain, no stamps) and a
/// version child list — the `children(x′) =v children(y)` test.
pub(crate) fn content_equals(
    a: &Archive,
    x_children: &[ANodeId],
    doc: &Document,
    y_children: &[NodeId],
) -> bool {
    if x_children.len() != y_children.len() {
        return false;
    }
    x_children
        .iter()
        .zip(y_children.iter())
        .all(|(&xc, &yc)| node_equals(a, xc, doc, yc))
}

fn node_equals(a: &Archive, xc: ANodeId, doc: &Document, yc: NodeId) -> bool {
    match (&a.node(xc).kind, &doc.node(yc).kind) {
        (AKind::Text(t1), NodeKind::Text(t2)) => t1 == t2,
        (AKind::Element(s1), NodeKind::Element(s2)) => {
            if a.syms().resolve(*s1) != doc.syms().resolve(*s2) {
                return false;
            }
            // attrs as sets
            let n1 = a.node(xc);
            if n1.attrs.len() != doc.attrs(yc).len() {
                return false;
            }
            let mut a1: Vec<(&str, &str)> = n1
                .attrs
                .iter()
                .map(|(s, v)| (a.syms().resolve(*s), v.as_str()))
                .collect();
            let mut a2: Vec<(&str, &str)> = doc
                .attrs(yc)
                .iter()
                .map(|(s, v)| (doc.syms().resolve(*s), v.as_str()))
                .collect();
            a1.sort_unstable();
            a2.sort_unstable();
            if a1 != a2 {
                return false;
            }
            content_equals(a, a.children(xc), doc, doc.children(yc))
        }
        _ => false,
    }
}
