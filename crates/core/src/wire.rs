//! Shared wire primitives: LEB128 varints and length-prefixed strings.
//!
//! One encoding, three consumers: the external-memory event streams
//! (`xarch_extmem::events` delegates here), the checkpoint state codec
//! ([`crate::state`]), and the durable checkpoint block payloads in
//! `xarch_storage`. Keeping the primitives in `xarch_core` — the crate
//! every backend already depends on — means the byte-level grammar is
//! defined exactly once (see `docs/FORMAT.md` §Primitives).
//!
//! Decoding never panics: every failure is a positioned [`WireError`]
//! that callers convert into their own error type (`StoreError::Corrupt`
//! in the storage paths).
//!
//! ```
//! use xarch_core::wire::{get_varint, put_varint};
//!
//! let mut buf = Vec::new();
//! put_varint(&mut buf, 300);
//! let mut pos = 0;
//! assert_eq!(get_varint(&buf, &mut pos).unwrap(), 300);
//! assert_eq!(pos, buf.len());
//! ```

use std::fmt;

/// A positioned decoding failure on untrusted bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset into the buffer where decoding failed.
    pub offset: usize,
    /// What failed to decode.
    pub reason: &'static str,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.reason, self.offset)
    }
}

impl std::error::Error for WireError {}

/// Shorthand for wire-decoding results.
pub type WireResult<T> = Result<T, WireError>;

fn err<T>(offset: usize, reason: &'static str) -> WireResult<T> {
    Err(WireError { offset, reason })
}

/// Appends `v` as an LEB128 varint (7 value bits per byte, high bit =
/// continuation).
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

/// Decodes an LEB128 varint at `*pos`, advancing the cursor past it.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> WireResult<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&b) = buf.get(*pos) else {
            return err(*pos, "truncated varint");
        };
        *pos += 1;
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return err(*pos, "varint overflow");
        }
    }
}

/// Appends `s` as a varint length prefix followed by its UTF-8 bytes.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Decodes a length-prefixed string at `*pos`, advancing the cursor.
pub fn get_str(buf: &[u8], pos: &mut usize) -> WireResult<String> {
    let len = get_varint(buf, pos)?;
    let len = usize::try_from(len).map_err(|_| WireError {
        offset: *pos,
        reason: "string length overflow",
    })?;
    let start = *pos;
    // checked: a crafted length near usize::MAX must error, not overflow
    let Some(bytes) = start.checked_add(len).and_then(|end| buf.get(start..end)) else {
        return err(start, "truncated string");
    };
    *pos += len;
    match std::str::from_utf8(bytes) {
        Ok(s) => Ok(s.to_owned()),
        // report the *start* of the bad string — the offset a maintainer
        // will inspect — not the already-advanced cursor
        Err(_) => err(start, "invalid utf-8"),
    }
}

/// Appends `bytes` with a varint length prefix.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Decodes a length-prefixed byte slice at `*pos`, advancing the cursor.
/// Borrows from `buf` — no copy.
pub fn get_bytes<'a>(buf: &'a [u8], pos: &mut usize) -> WireResult<&'a [u8]> {
    let len = get_varint(buf, pos)?;
    let len = usize::try_from(len).map_err(|_| WireError {
        offset: *pos,
        reason: "byte-slice length overflow",
    })?;
    let start = *pos;
    let Some(bytes) = start.checked_add(len).and_then(|end| buf.get(start..end)) else {
        return err(start, "truncated byte slice");
    };
    *pos += len;
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_across_widths() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_and_overflowing_varints_error_with_position() {
        let mut pos = 0;
        let e = get_varint(&[0x80], &mut pos).unwrap_err();
        assert_eq!(e.reason, "truncated varint");
        let mut pos = 0;
        let e = get_varint(&[0x80; 10], &mut pos).unwrap_err();
        assert_eq!(e.reason, "varint overflow");
    }

    #[test]
    fn strings_and_bytes_round_trip() {
        let mut buf = Vec::new();
        put_str(&mut buf, "héllo");
        put_bytes(&mut buf, &[1, 2, 3]);
        let mut pos = 0;
        assert_eq!(get_str(&buf, &mut pos).unwrap(), "héllo");
        assert_eq!(get_bytes(&buf, &mut pos).unwrap(), &[1, 2, 3]);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn crafted_lengths_cannot_overflow() {
        // length prefix far larger than the buffer
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        let mut pos = 0;
        assert!(get_str(&buf, &mut pos).is_err());
        let mut pos = 0;
        assert!(get_bytes(&buf, &mut pos).is_err());
    }

    #[test]
    fn invalid_utf8_reports_the_string_start() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut pos = 0;
        let e = get_str(&buf, &mut pos).unwrap_err();
        assert_eq!(e.reason, "invalid utf-8");
        assert_eq!(e.offset, 1);
    }
}
