//! Chunked archiving (§5).
//!
//! "To overcome the memory limitation, we hashed our experimental data into
//! 'chunks' based on the values of keys. An incoming version is partitioned
//! in the same manner, and we apply our archiver to the corresponding
//! chunks of the archive and the incoming version. Since we never merge
//! elements with different key values, we can obtain the archive of the
//! whole data by merging the archive and the version chunk by chunk, and
//! concatenating the results."
//!
//! [`ChunkedArchive`] partitions the *top-level keyed elements* (children
//! of the document root, e.g. OMIM `Record`s) by a hash of their key value.
//! Each chunk is an independent [`Archive`]; retrieval concatenates the
//! chunks' contents. Integration tests verify the result is equivalent to
//! whole-document archiving.

use xarch_keys::{annotate, fingerprint, KeySpec};
use xarch_xml::{Document, NodeId, NodeKind};

use crate::archive::{Archive, MergeError};

/// An archive split into hash-partitioned chunks.
#[derive(Debug, Clone)]
pub struct ChunkedArchive {
    chunks: Vec<Archive>,
    spec: KeySpec,
    root_tag: Option<String>,
    latest: u32,
}

impl ChunkedArchive {
    /// Creates a chunked archive with `n` chunks (n ≥ 1).
    pub fn new(spec: KeySpec, n: usize) -> Self {
        assert!(n >= 1, "need at least one chunk");
        Self {
            chunks: (0..n).map(|_| Archive::new(spec.clone())).collect(),
            spec,
            root_tag: None,
            latest: 0,
        }
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// The chunk archives (for inspection / size accounting).
    pub fn chunks(&self) -> &[Archive] {
        &self.chunks
    }

    /// Number of archived versions.
    pub fn latest(&self) -> u32 {
        self.latest
    }

    /// Partitions `doc`'s top-level keyed children by key hash and merges
    /// each partition into its chunk.
    pub fn add_version(&mut self, doc: &Document) -> Result<u32, MergeError> {
        let ann = annotate(doc, &self.spec)?;
        let root = doc.root();
        let root_tag = doc.tag_name(root).to_owned();
        if let Some(prev) = &self.root_tag {
            debug_assert_eq!(prev, &root_tag, "root tag must be stable across versions");
        }
        self.root_tag = Some(root_tag.clone());

        let n = self.chunks.len();
        let mut parts: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &c in doc.children(root) {
            let idx = match (&doc.node(c).kind, ann.key(c)) {
                (NodeKind::Element(s), Some(k)) => {
                    let mut label = doc.syms().resolve(*s).to_owned();
                    for p in &k.parts {
                        label.push('|');
                        label.push_str(&p.canon);
                    }
                    (fingerprint(&label) % n as u128) as usize
                }
                _ => 0,
            };
            parts[idx].push(c);
        }
        // Build one sub-document per chunk and merge it. Every chunk gets a
        // version each round so version numbers stay aligned.
        let mut assigned = None;
        for (i, part) in parts.iter().enumerate() {
            let mut sub = Document::new(&root_tag);
            let sub_root = sub.root();
            for (name, value) in doc
                .attrs(root)
                .iter()
                .map(|(s, v)| (doc.syms().resolve(*s).to_owned(), v.clone()))
                .collect::<Vec<_>>()
            {
                sub.set_attr(sub_root, &name, &value);
            }
            for &c in part {
                sub.copy_subtree_from(doc, c, sub_root);
            }
            let v = self.chunks[i].add_version(&sub)?;
            match assigned {
                None => assigned = Some(v),
                Some(prev) => debug_assert_eq!(prev, v, "chunk versions diverged"),
            }
        }
        self.latest = assigned.expect("at least one chunk");
        Ok(self.latest)
    }

    /// Retrieves version `v` by concatenating the chunks' contents.
    pub fn retrieve(&self, v: u32) -> Option<Document> {
        if v == 0 || v > self.latest {
            return None;
        }
        let root_tag = self.root_tag.as_ref()?;
        let mut out = Document::new(root_tag);
        let out_root = out.root();
        let mut any = false;
        for chunk in &self.chunks {
            if let Some(part) = chunk.retrieve(v) {
                any = true;
                let part_root = part.root();
                for (name, value) in part
                    .attrs(part_root)
                    .iter()
                    .map(|(s, val)| (part.syms().resolve(*s).to_owned(), val.clone()))
                    .collect::<Vec<_>>()
                {
                    out.set_attr(out_root, &name, &value);
                }
                for &c in part.children(part_root) {
                    out.copy_subtree_from(&part, c, out_root);
                }
            }
        }
        any.then_some(out)
    }

    /// Total size across chunks (pretty XML form).
    pub fn size_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.size_bytes()).sum()
    }
}
