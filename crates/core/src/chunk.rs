//! Chunked archiving (§5).
//!
//! "To overcome the memory limitation, we hashed our experimental data into
//! 'chunks' based on the values of keys. An incoming version is partitioned
//! in the same manner, and we apply our archiver to the corresponding
//! chunks of the archive and the incoming version. Since we never merge
//! elements with different key values, we can obtain the archive of the
//! whole data by merging the archive and the version chunk by chunk, and
//! concatenating the results."
//!
//! [`ChunkedArchive`] partitions the *top-level keyed elements* (children
//! of the document root, e.g. OMIM `Record`s) by a hash of their key value.
//! Each chunk is an independent [`Archive`]; retrieval concatenates the
//! chunks' contents. Integration tests verify the result is equivalent to
//! whole-document archiving.

use std::io::{self, Write};

use xarch_keys::{annotate, fingerprint, Annotations, KeySpec};
use xarch_xml::escape::escape_attr;
use xarch_xml::{Document, NodeId, NodeKind};

use crate::archive::{AKind, Archive, ArchiveStats, Compaction, MergeError};
use crate::history::KeyQuery;
use crate::timeset::TimeSet;

/// The partition label a top-level element (or the query step addressing
/// it) hashes to: `tag|canon|canon…` over the key parts in sorted-path
/// order. Partitioning (`add_version`) and query routing (`chunk_for`)
/// must agree byte for byte — both call this.
fn partition_label<'a>(tag: &str, canons: impl Iterator<Item = &'a str>) -> String {
    let mut label = tag.to_owned();
    for canon in canons {
        label.push('|');
        label.push_str(canon);
    }
    label
}

/// An archive split into hash-partitioned chunks.
#[derive(Debug, Clone)]
pub struct ChunkedArchive {
    chunks: Vec<Archive>,
    spec: KeySpec,
    root_tag: Option<String>,
    latest: u32,
}

impl ChunkedArchive {
    /// Creates a chunked archive with `n` chunks (n ≥ 1).
    pub fn new(spec: KeySpec, n: usize) -> Self {
        Self::with_compaction(spec, n, Compaction::default())
    }

    /// Creates a chunked archive whose chunks use an explicit frontier
    /// compaction mode.
    pub fn with_compaction(spec: KeySpec, n: usize, compaction: Compaction) -> Self {
        assert!(n >= 1, "need at least one chunk");
        Self {
            chunks: (0..n)
                .map(|_| Archive::with_compaction(spec.clone(), compaction))
                .collect(),
            spec,
            root_tag: None,
            latest: 0,
        }
    }

    /// The governing key specification.
    pub fn spec(&self) -> &KeySpec {
        &self.spec
    }

    /// The cached root tag (set by the first non-empty merge); checkpoint
    /// state must carry it so a restored store keeps rejecting documents
    /// with a different root.
    pub(crate) fn root_tag(&self) -> Option<&str> {
        self.root_tag.as_deref()
    }

    /// Rebuilds a chunked archive from deserialized parts (checkpoint
    /// restore; `crate::state` has validated each chunk).
    pub(crate) fn from_parts(
        spec: KeySpec,
        chunks: Vec<Archive>,
        root_tag: Option<String>,
        latest: u32,
    ) -> Self {
        Self {
            chunks,
            spec,
            root_tag,
            latest,
        }
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// The chunk archives (for inspection / size accounting).
    pub fn chunks(&self) -> &[Archive] {
        &self.chunks
    }

    /// Number of archived versions.
    pub fn latest(&self) -> u32 {
        self.latest
    }

    /// True if version `v` has been archived (it may still be an *empty*
    /// version) — the same contract as [`Archive::has_version`].
    pub fn has_version(&self, v: u32) -> bool {
        v >= 1 && v <= self.latest
    }

    /// Archives an *empty* database as the next version: every chunk
    /// terminates its contents while the synthetic roots keep ticking, so
    /// `has_version` answers `true` and `retrieve` answers `None` — the
    /// distinction documented in `crate::retrieve`.
    pub fn add_empty_version(&mut self) -> u32 {
        let mut assigned = 0;
        for chunk in &mut self.chunks {
            assigned = chunk.add_empty_version();
        }
        self.latest = assigned;
        self.latest
    }

    /// Splits `doc` into one sub-document per chunk: the root (with its
    /// attributes) plus the top-level keyed children hashing to that
    /// chunk. The caller has verified the root is keyed.
    fn sub_documents(&self, doc: &Document, ann: &Annotations) -> Vec<Document> {
        let root = doc.root();
        let root_tag = doc.tag_name(root);
        let n = self.chunks.len();
        let mut parts: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &c in doc.children(root) {
            let idx = match (&doc.node(c).kind, ann.key(c)) {
                (NodeKind::Element(s), Some(k)) => {
                    let label = partition_label(
                        doc.syms().resolve(*s),
                        k.parts.iter().map(|p| p.canon.as_str()),
                    );
                    (fingerprint(&label) % n as u128) as usize
                }
                _ => 0,
            };
            parts[idx].push(c);
        }
        let attrs: Vec<(String, String)> = doc
            .attrs(root)
            .iter()
            .map(|(s, v)| (doc.syms().resolve(*s).to_owned(), v.clone()))
            .collect();
        parts
            .iter()
            .map(|part| {
                let mut sub = Document::new(root_tag);
                let sub_root = sub.root();
                for (name, value) in &attrs {
                    sub.set_attr(sub_root, name, value);
                }
                for &c in part {
                    sub.copy_subtree_from(doc, c, sub_root);
                }
                sub
            })
            .collect()
    }

    /// Partitions `doc`'s top-level keyed children by key hash and merges
    /// each partition into its chunk.
    ///
    /// Routed through [`ChunkedArchive::add_versions`] as a one-document
    /// batch: every possible rejection (whole-document *and* per-chunk
    /// sub-document validation) happens before any chunk is touched, and
    /// the per-chunk merges then run as independent, infallible stripes on
    /// worker threads. The old serial loop could fail after some chunks
    /// had already advanced, desynchronizing the partition version
    /// counters; the batch path structurally cannot.
    pub fn add_version(&mut self, doc: &Document) -> Result<u32, MergeError> {
        let assigned = self.add_versions(std::slice::from_ref(doc))?;
        debug_assert_eq!(assigned.len(), 1, "one document merges as one version");
        Ok(self.latest)
    }

    /// Bulk ingest: partitions every document of the batch once, then
    /// merges each chunk's sub-batch on its own worker thread — §5's
    /// "merge chunk by chunk" runs chunk-parallel because the partitions
    /// are independent archives by construction. Each worker uses the
    /// in-memory archive's one-pass batch merge, so the result is
    /// version-for-version identical to a serial replay.
    ///
    /// The whole batch is annotated and validated before any chunk is
    /// touched: a rejected batch leaves the store unchanged.
    pub fn add_versions(&mut self, docs: &[Document]) -> Result<Vec<u32>, MergeError> {
        if docs.is_empty() {
            return Ok(Vec::new());
        }
        let anns = docs
            .iter()
            .map(|d| annotate(d, &self.spec))
            .collect::<Result<Vec<_>, _>>()?;
        let mut root_tag = self.root_tag.clone();
        for (doc, ann) in docs.iter().zip(&anns) {
            let root = doc.root();
            if !ann.is_keyed(root) {
                return Err(MergeError::UnkeyedRoot(doc.tag_name(root).to_owned()));
            }
            if let Some(prev) = &root_tag {
                debug_assert_eq!(
                    prev,
                    doc.tag_name(root),
                    "root tag must be stable across versions"
                );
            }
            root_tag = Some(doc.tag_name(root).to_owned());
        }

        // One partitioning pass per version, gathered per chunk …
        let mut subs: Vec<Vec<Document>> = (0..self.chunks.len())
            .map(|_| Vec::with_capacity(docs.len()))
            .collect();
        for (doc, ann) in docs.iter().zip(&anns) {
            for (i, sub) in self.sub_documents(doc, ann).into_iter().enumerate() {
                subs[i].push(sub);
            }
        }
        // … annotated and validated in full BEFORE any chunk is touched.
        // A sub-document can be invalid even when the whole document was
        // not (a root key whose key-path children hashed to another
        // chunk), and a merge failing after sibling chunks advanced would
        // desynchronize the partition version counters — so every
        // possible rejection happens here, and the merges below are
        // infallible ([`Archive::add_annotated_versions`]).
        let sub_anns: Vec<Vec<Annotations>> = subs
            .iter()
            .map(|chunk_subs| {
                chunk_subs
                    .iter()
                    .map(|sub| {
                        let ann = annotate(sub, &self.spec)?;
                        if !ann.is_keyed(sub.root()) {
                            return Err(MergeError::UnkeyedRoot(
                                sub.tag_name(sub.root()).to_owned(),
                            ));
                        }
                        Ok(ann)
                    })
                    .collect::<Result<Vec<_>, MergeError>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        // … then every chunk merges its sub-batch on a pool of worker
        // threads, capped at the hardware parallelism (one worker runs
        // the merges in place — no thread overhead on a single core).
        let workers = std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(self.chunks.len());
        let per_worker = self.chunks.len().div_ceil(workers);
        let results: Vec<Vec<u32>> = if workers <= 1 {
            self.chunks
                .iter_mut()
                .zip(&subs)
                .zip(&sub_anns)
                .map(|((chunk, sub), ann)| chunk.add_annotated_versions(sub, ann))
                .collect()
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .chunks
                    .chunks_mut(per_worker)
                    .zip(subs.chunks(per_worker))
                    .zip(sub_anns.chunks(per_worker))
                    .map(|((chunk_group, sub_group), ann_group)| {
                        s.spawn(move || {
                            chunk_group
                                .iter_mut()
                                .zip(sub_group)
                                .zip(ann_group)
                                .map(|((chunk, sub), ann)| chunk.add_annotated_versions(sub, ann))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("chunk merge thread panicked"))
                    .collect()
            })
        };
        let mut assigned: Option<Vec<u32>> = None;
        for vs in results {
            match &assigned {
                None => assigned = Some(vs),
                Some(prev) => debug_assert_eq!(prev, &vs, "chunk versions diverged"),
            }
        }
        let assigned = assigned.expect("at least one chunk");
        self.root_tag = root_tag;
        self.latest = *assigned.last().expect("non-empty batch");
        Ok(assigned)
    }

    /// Retrieves version `v` by concatenating the chunks' contents.
    pub fn retrieve(&self, v: u32) -> Option<Document> {
        if v == 0 || v > self.latest {
            return None;
        }
        let root_tag = self.root_tag.as_ref()?;
        let mut out = Document::new(root_tag);
        let out_root = out.root();
        let mut any = false;
        for chunk in &self.chunks {
            if let Some(part) = chunk.retrieve(v) {
                any = true;
                let part_root = part.root();
                for (name, value) in part
                    .attrs(part_root)
                    .iter()
                    .map(|(s, val)| (part.syms().resolve(*s).to_owned(), val.clone()))
                    .collect::<Vec<_>>()
                {
                    out.set_attr(out_root, &name, &value);
                }
                for &c in part.children(part_root) {
                    out.copy_subtree_from(&part, c, out_root);
                }
            }
        }
        any.then_some(out)
    }

    /// Streaming retrieval of version `v`: splices every chunk's visible
    /// contents under one document root, written to `out` as compact XML.
    /// Returns `true` iff a document was written (same `None`-for-empty
    /// contract as [`ChunkedArchive::retrieve`]).
    pub fn retrieve_into<W: Write + ?Sized>(&self, v: u32, out: &mut W) -> io::Result<bool> {
        if !self.has_version(v) {
            return Ok(false);
        }
        let Some(root_tag) = self.root_tag.as_ref() else {
            return Ok(false);
        };
        // Chunk doc roots visible at v (an empty version leaves none).
        let visible: Vec<(usize, crate::archive::ANodeId)> = self
            .chunks
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                c.children(c.root())
                    .iter()
                    .copied()
                    .find(|&dr| matches!(c.node(dr).kind, AKind::Element(_)) && c.visible(dr, v))
                    .map(|dr| (i, dr))
            })
            .collect();
        let Some(&(first, first_root)) = visible.first() else {
            return Ok(false);
        };
        write!(out, "<{root_tag}")?;
        let fc = &self.chunks[first];
        for (a, val) in &fc.node(first_root).attrs {
            write!(out, " {}=\"{}\"", fc.syms().resolve(*a), escape_attr(val))?;
        }
        if visible
            .iter()
            .any(|&(i, dr)| self.chunks[i].has_visible_content(dr, v))
        {
            write!(out, ">")?;
            for &(i, dr) in &visible {
                self.chunks[i].write_visible_children(dr, v, out)?;
            }
            write!(out, "</{root_tag}>")?;
        } else {
            write!(out, "/>")?;
        }
        Ok(true)
    }

    /// The chunk owning the top-level element a query step addresses —
    /// the same `tag|canon…` label hash [`ChunkedArchive::add_version`]
    /// partitions by (both sides share [`partition_label`], so routing
    /// cannot drift from partitioning), letting a query touch one chunk
    /// instead of all of them.
    fn chunk_for(&self, step: &KeyQuery) -> usize {
        let label = partition_label(
            &step.tag,
            step.parts.iter().map(|(_, canon)| canon.as_str()),
        );
        (fingerprint(&label) % self.chunks.len() as u128) as usize
    }

    /// The temporal history of the element addressed by `steps` (§7.2).
    /// Paths of two or more steps descend through exactly one top-level
    /// element, so they route to the chunk owning it; the document root
    /// (and the empty path) carry the same timestamp in every chunk, so
    /// the union over chunks answers those.
    pub fn history(&self, steps: &[KeyQuery]) -> Option<TimeSet> {
        if steps.len() >= 2 {
            return self.chunks[self.chunk_for(&steps[1])].history(steps);
        }
        let mut found = None;
        for chunk in &self.chunks {
            if let Some(t) = chunk.history(steps) {
                found = Some(match found {
                    None => t,
                    Some(prev) => t.union(&prev),
                });
            }
        }
        found
    }

    /// Partial retrieval routed to the owning chunk: paths below a
    /// top-level element are answered entirely by the chunk holding it;
    /// the document root spans every chunk, so those fall back to a full
    /// concatenating retrieve.
    pub fn as_of(&self, steps: &[KeyQuery], v: u32) -> Option<Document> {
        if !self.has_version(v) {
            return None;
        }
        if steps.len() >= 2 {
            return self.chunks[self.chunk_for(&steps[1])].as_of(steps, v);
        }
        let doc = self.retrieve(v)?;
        if steps.is_empty() {
            return Some(doc);
        }
        // one root-level step: the subtree is the whole document, but the
        // step must actually match the document root
        crate::query::find_in_doc(&doc, &self.spec, steps)
            .and_then(|id| crate::query::subtree_doc(&doc, id))
    }

    /// Range scan: prefixes of two or more steps route to the owning
    /// chunk; the document root's children are partitioned across all
    /// chunks, so those fan out and merge (entries shared by every chunk
    /// — the root itself — union their windows).
    pub fn range(
        &self,
        prefix: &[KeyQuery],
        versions: std::ops::RangeInclusive<u32>,
    ) -> Vec<crate::query::RangeEntry> {
        if prefix.len() >= 2 {
            return self.chunks[self.chunk_for(&prefix[1])].range(prefix, versions);
        }
        let mut acc: std::collections::BTreeMap<KeyQuery, TimeSet> =
            std::collections::BTreeMap::new();
        for chunk in &self.chunks {
            for e in chunk.range(prefix, versions.clone()) {
                acc.entry(e.step)
                    .and_modify(|t| *t = t.union(&e.time))
                    .or_insert(e.time);
            }
        }
        acc.into_iter()
            .map(|(step, time)| crate::query::RangeEntry { step, time })
            .collect()
    }

    /// Aggregate statistics summed over chunks. Each chunk carries its own
    /// synthetic root and document root, so element counts describe
    /// storage rather than the logical document tree.
    pub fn stats(&self) -> ArchiveStats {
        let mut total = ArchiveStats {
            elements: 0,
            texts: 0,
            stamps: 0,
            explicit_times: 0,
            intervals: 0,
        };
        for chunk in &self.chunks {
            let s = chunk.stats();
            total.elements += s.elements;
            total.texts += s.texts;
            total.stamps += s.stamps;
            total.explicit_times += s.explicit_times;
            total.intervals += s.intervals;
        }
        total
    }

    /// Total size across chunks (pretty XML form).
    pub fn size_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.size_bytes()).sum()
    }

    /// Aggregate statistics summed over chunks *as they stood* after
    /// version `v` merged — the pinned-exact counterpart of
    /// [`ChunkedArchive::stats`] (see [`Archive::stats_at`]).
    pub fn stats_at(&self, v: u32) -> ArchiveStats {
        let mut total = ArchiveStats {
            elements: 0,
            texts: 0,
            stamps: 0,
            explicit_times: 0,
            intervals: 0,
        };
        for chunk in &self.chunks {
            let s = chunk.stats_at(v);
            total.elements += s.elements;
            total.texts += s.texts;
            total.stamps += s.stamps;
            total.explicit_times += s.explicit_times;
            total.intervals += s.intervals;
        }
        total
    }

    /// Total size across chunks as they stood after version `v` merged
    /// (canonical clamped pretty XML form — see [`Archive::size_bytes_at`]).
    pub fn size_bytes_at(&self, v: u32) -> usize {
        self.chunks.iter().map(|c| c.size_bytes_at(v)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::equiv_modulo_key_order;
    use xarch_xml::parse;

    fn spec() -> KeySpec {
        KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))\n(/db/rec, (val, {}))").unwrap()
    }

    #[test]
    fn empty_version_reported_like_whole_archive() {
        let doc = parse("<db><rec><id>1</id><val>x</val></rec></db>").unwrap();
        let mut whole = Archive::new(spec());
        let mut chunked = ChunkedArchive::new(spec(), 3);
        whole.add_version(&doc).unwrap();
        chunked.add_version(&doc).unwrap();
        whole.add_empty_version();
        chunked.add_empty_version();

        for v in [1u32, 2, 3] {
            assert_eq!(whole.has_version(v), chunked.has_version(v), "v{v}");
            assert_eq!(
                whole.retrieve(v).is_some(),
                chunked.retrieve(v).is_some(),
                "v{v}"
            );
        }
        // archived-but-empty: v2 exists yet yields no document
        assert!(chunked.has_version(2));
        assert!(chunked.retrieve(2).is_none());
        // a later version still archives and retrieves
        chunked.add_version(&doc).unwrap();
        assert!(equiv_modulo_key_order(
            &chunked.retrieve(3).unwrap(),
            &doc,
            &spec()
        ));
    }

    #[test]
    fn history_routes_across_chunks() {
        let mut c = ChunkedArchive::new(spec(), 4);
        c.add_version(&parse("<db><rec><id>1</id><val>x</val></rec></db>").unwrap())
            .unwrap();
        c.add_version(
            &parse("<db><rec><id>1</id><val>x</val></rec><rec><id>2</id><val>y</val></rec></db>")
                .unwrap(),
        )
        .unwrap();
        let q = |id: &str| {
            [
                KeyQuery::new("db"),
                KeyQuery::new("rec").with_text("id", id),
            ]
        };
        assert_eq!(c.history(&q("1")).unwrap().to_string(), "1-2");
        assert_eq!(c.history(&q("2")).unwrap().to_string(), "2");
        assert!(c.history(&q("9")).is_none());
        assert_eq!(
            c.history(&[KeyQuery::new("db")]).unwrap().to_string(),
            "1-2"
        );
    }
}
