//! Temporal history of keyed elements (§7.2).
//!
//! "Given the key of an element, one might like to retrieve the temporal
//! history of this element, i.e., the times at which this element exists.
//! For example, the history of employee Joe given by the path
//! `/db/dept[name=finance]/emp[fn=John, ln=Doe]` is `3,4`."
//!
//! A query is a sequence of [`KeyQuery`] steps, one per keyed level. The
//! naive lookup here walks the archive level by level; `xarch-index`
//! provides the sorted-list index that answers the same query in
//! `O(l log d)`.

use std::cmp::Ordering;

use xarch_xml::escape::{escape_attr, escape_text};
use xarch_xml::Document;

use crate::archive::{AKind, ANodeId, Archive};
use crate::timeset::TimeSet;

/// One step of a history query: a tag plus the expected key-part values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyQuery {
    /// Element tag, e.g. `emp`.
    pub tag: String,
    /// `(key path, canonical value)` pairs, e.g.
    /// `("fn", "<fn>John</fn>")`. Kept sorted by path.
    pub parts: Vec<(String, String)>,
}

impl KeyQuery {
    /// A step keyed by `{}` (at most one such child), e.g. `sal`.
    pub fn new(tag: &str) -> Self {
        Self {
            tag: tag.to_owned(),
            parts: Vec::new(),
        }
    }

    /// Adds a key part whose value is a text-only element, e.g.
    /// `.with_text("fn", "John")` for the key path `fn` ending at
    /// `<fn>John</fn>`.
    pub fn with_text(mut self, path: &str, text: &str) -> Self {
        let last = path.rsplit('/').next().unwrap_or(path);
        self.parts.push((
            path.to_owned(),
            format!("<{last}>{}</{last}>", escape_text(text)),
        ));
        self.sort();
        self
    }

    /// Adds a key part that is an attribute, e.g. `.with_attr("id", "i1")`.
    pub fn with_attr(mut self, name: &str, value: &str) -> Self {
        self.parts.push((
            name.to_owned(),
            format!("@{}=\"{}\"", name, escape_attr(value)),
        ));
        self.sort();
        self
    }

    /// Adds a key part with an explicit canonical value (for content keys
    /// `{.}` or structured key-path values).
    pub fn with_canon(mut self, path: &str, canon: &str) -> Self {
        self.parts.push((path.to_owned(), canon.to_owned()));
        self.sort();
        self
    }

    fn sort(&mut self) {
        self.parts.sort_by(|a, b| a.0.cmp(&b.0));
    }

    fn matches(&self, a: &Archive, id: ANodeId) -> bool {
        let n = a.node(id);
        let AKind::Element(s) = n.kind else {
            return false;
        };
        if a.syms().resolve(s) != self.tag {
            return false;
        }
        let Some(k) = &n.key else {
            return false;
        };
        if k.parts.len() != self.parts.len() {
            return false;
        }
        k.parts
            .iter()
            .zip(self.parts.iter())
            .all(|(p, (qp, qv))| p.path == *qp && p.canon == *qv)
    }
}

impl Archive {
    /// Finds the archive node addressed by a key-query path. The first step
    /// addresses the document root (e.g. `db`).
    pub fn find(&self, steps: &[KeyQuery]) -> Option<ANodeId> {
        let mut cur = self.root();
        for step in steps {
            cur = self
                .children(cur)
                .iter()
                .copied()
                .find(|&c| step.matches(self, c))?;
        }
        Some(cur)
    }

    /// The temporal history of the element addressed by `steps`: the set of
    /// versions in which it exists. `None` if no such element was ever
    /// archived.
    pub fn history(&self, steps: &[KeyQuery]) -> Option<TimeSet> {
        self.find(steps).map(|id| self.effective_time(id))
    }

    /// Partial retrieval (§7.1 applied below the root): the subtree
    /// addressed by `steps` as it existed at version `v`. The walk
    /// descends the key path and then emits only the nodes visible at
    /// `v`, so the cost is O(path + answer). An empty path addresses the
    /// whole document.
    pub fn as_of(&self, steps: &[KeyQuery], v: u32) -> Option<Document> {
        if !self.has_version(v) {
            return None;
        }
        if steps.is_empty() {
            return self.retrieve(v);
        }
        self.find(steps).and_then(|id| self.subtree_at(id, v))
    }

    /// Range scan (§7.2 turned sideways): every keyed element child of
    /// the node addressed by `prefix` whose lifetime intersects the
    /// closed version window, with the lifetime clamped to the window.
    /// Results are in label order.
    pub fn range(
        &self,
        prefix: &[KeyQuery],
        versions: std::ops::RangeInclusive<u32>,
    ) -> Vec<crate::query::RangeEntry> {
        let lo = (*versions.start()).max(1);
        let hi = (*versions.end()).min(self.latest());
        let Some(node) = self.find(prefix) else {
            return Vec::new();
        };
        let mut out: Vec<crate::query::RangeEntry> = Vec::new();
        for &c in self.children(node) {
            let Some(step) = self.step_of(c) else {
                continue;
            };
            let time = self.effective_time(c).clamp_range(lo, hi);
            if !time.is_empty() {
                out.push(crate::query::RangeEntry { step, time });
            }
        }
        out.sort_by(|a, b| a.step.cmp(&b.step));
        out
    }

    /// The query step addressing archive node `id` — its tag plus key
    /// value — or `None` for text, stamp, and unkeyed fallback nodes,
    /// which no key path can address.
    pub fn step_of(&self, id: ANodeId) -> Option<KeyQuery> {
        let n = self.node(id);
        let AKind::Element(s) = n.kind else {
            return None;
        };
        let k = n.key.as_ref()?;
        Some(KeyQuery {
            tag: self.syms().resolve(s).to_owned(),
            parts: k
                .parts
                .iter()
                .map(|p| (p.path.clone(), p.canon.clone()))
                .collect(),
        })
    }

    /// The history of a *frontier value*: the versions at which the element
    /// addressed by `steps` had content value-equal to `canon` (canonical
    /// form). Answers questions like "when did John's salary read 90K?".
    pub fn value_history(&self, steps: &[KeyQuery], canon: &str) -> Option<TimeSet> {
        let id = self.find(steps)?;
        let eff = self.effective_time(id);
        let children = self.children(id);
        let has_stamps = children
            .iter()
            .any(|&c| matches!(self.node(c).kind, AKind::Stamp));
        if !has_stamps {
            // single alternative for the node's whole lifetime
            let content = self.content_canonical(id);
            return if content == canon {
                Some(eff)
            } else {
                Some(TimeSet::new())
            };
        }
        let mut out = TimeSet::new();
        for &c in children {
            if matches!(self.node(c).kind, AKind::Stamp) && self.content_canonical(c) == canon {
                out = out.union(self.node(c).time.as_ref().expect("stamp time"));
            }
        }
        Some(out)
    }

    /// Canonical form of the (plain) content of a node.
    fn content_canonical(&self, id: ANodeId) -> String {
        let mut out = String::new();
        for &c in self.children(id) {
            out.push_str(&crate::merge::canonical_anode(self, c));
        }
        out
    }

    /// Compares a query step against a node label — exposed for the sorted
    /// index in `xarch-index`.
    pub fn query_cmp(&self, id: ANodeId, step: &KeyQuery) -> Ordering {
        let n = self.node(id);
        let AKind::Element(s) = n.kind else {
            return Ordering::Less;
        };
        let tag = a_tag(self, s);
        tag.cmp(step.tag.as_str()).then_with(|| {
            let empty: &[xarch_keys::KeyPart] = &[];
            let parts = n.key.as_ref().map_or(empty, |k| k.parts.as_slice());
            parts.len().cmp(&step.parts.len()).then_with(|| {
                for (p, (qp, qv)) in parts.iter().zip(step.parts.iter()) {
                    let o = p.path.as_str().cmp(qp.as_str());
                    if o != Ordering::Equal {
                        return o;
                    }
                    let o = p.canon.as_str().cmp(qv.as_str());
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                Ordering::Equal
            })
        })
    }
}

fn a_tag(a: &Archive, s: xarch_xml::Sym) -> &str {
    a.syms().resolve(s)
}
