//! The temporal query model (§7): results and document-side helpers.
//!
//! The paper's point of keyed, timestamped archives is that temporal
//! questions become cheap: *as-of* ("this element at version v"),
//! *history* ("when did it exist, and what did it say"), *range* ("which
//! elements lived under this path during these versions") and *diff*
//! ("what changed between v1 and v2"). This module defines the result
//! types those queries share across every backend, plus the
//! annotate-based [`Document`] navigation the default (whole-retrieve)
//! fallbacks are built from. The fast paths live with each backend: the
//! in-memory archive prunes with the §7 index structures, the chunked
//! archive routes to the owning chunk, the external-memory archive does a
//! partial stream scan.

use std::cmp::Ordering;

use xarch_diff::{diff_lines, split_lines};
use xarch_keys::{annotate, KeySpec};
use xarch_xml::{Document, NodeId, NodeKind};

use crate::history::KeyQuery;
use crate::timeset::TimeSet;

impl PartialOrd for KeyQuery {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The label order `≤lab` of §4.2 — tag, then key arity, then key paths,
/// then key values — the same order the merge sorts children by, so range
/// results are comparable byte-for-byte across backends.
impl Ord for KeyQuery {
    fn cmp(&self, other: &Self) -> Ordering {
        self.tag.cmp(&other.tag).then_with(|| {
            self.parts.len().cmp(&other.parts.len()).then_with(|| {
                for (a, b) in self.parts.iter().zip(other.parts.iter()) {
                    let o = a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1));
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                Ordering::Equal
            })
        })
    }
}

/// The full temporal account of one element: the versions it exists in,
/// and each distinct content it held, with the versions that held it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementHistory {
    /// Every version in which the element exists (§7.2's history).
    pub existence: TimeSet,
    /// Distinct contents over time, ordered by first appearance: the
    /// element serialized as compact XML, paired with the versions at
    /// which that exact content held.
    pub values: Vec<(TimeSet, String)>,
}

/// One hit of a range scan: a keyed child alive somewhere in the queried
/// version window, with its lifetime restricted to that window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeEntry {
    /// The child's label — feed it back as the next [`KeyQuery`] step.
    pub step: KeyQuery,
    /// The versions within the queried window at which the child exists.
    pub time: TimeSet,
}

/// What changed in one element between two versions, computed with the
/// Myers line diff of `xarch-diff` over the pretty-printed subtrees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionDelta {
    /// The earlier version queried.
    pub v1: u32,
    /// The later version queried.
    pub v2: u32,
    /// Whether the element exists at `v1` / at `v2`.
    pub present: (bool, bool),
    /// Lines removed going from `v1` to `v2`.
    pub removed: usize,
    /// Lines added going from `v1` to `v2`.
    pub added: usize,
    /// The edit script in `diff` normal format (empty when nothing
    /// changed).
    pub script: String,
}

impl VersionDelta {
    /// True when the element is byte-identical at both versions (including
    /// "absent at both").
    pub fn is_same(&self) -> bool {
        self.removed == 0 && self.added == 0 && self.present.0 == self.present.1
    }
}

/// Builds a [`VersionDelta`] from the two materialized subtrees (either
/// side may be absent). Shared by the default trait implementation — and
/// thereby by every backend, since `diff` composes from `as_of`.
pub fn delta(a: Option<&Document>, b: Option<&Document>, v1: u32, v2: u32) -> VersionDelta {
    let ta = a
        .map(|d| xarch_xml::writer::to_pretty_string(d, 2))
        .unwrap_or_default();
    let tb = b
        .map(|d| xarch_xml::writer::to_pretty_string(d, 2))
        .unwrap_or_default();
    let la = split_lines(&ta);
    let lb = split_lines(&tb);
    let script = diff_lines(&la, &lb);
    let (mut removed, mut added) = (0usize, 0usize);
    for e in &script.edits {
        removed += e.a_len;
        added += e.b_lines.len();
    }
    VersionDelta {
        v1,
        v2,
        present: (a.is_some(), b.is_some()),
        removed,
        added,
        script: script.to_normal_format(&la),
    }
}

/// Finds the node a key-query path addresses inside a plain [`Document`],
/// using the key annotations of `spec`. The first step addresses the
/// document root. Returns `None` when the path does not resolve (or the
/// document violates the spec — a retrieved version never does).
pub fn find_in_doc(doc: &Document, spec: &KeySpec, steps: &[KeyQuery]) -> Option<NodeId> {
    let ann = annotate(doc, spec).ok()?;
    find_with_ann(doc, &ann, steps)
}

/// [`find_in_doc`] against annotations already in hand — callers that
/// annotate once (per retrieved version) descend without re-annotating.
fn find_with_ann(
    doc: &Document,
    ann: &xarch_keys::Annotations,
    steps: &[KeyQuery],
) -> Option<NodeId> {
    let mut steps = steps.iter();
    let first = steps.next()?;
    let mut cur = doc.root();
    if !step_matches_doc(doc, ann, cur, first) {
        return None;
    }
    for step in steps {
        cur = doc
            .children(cur)
            .iter()
            .copied()
            .find(|&c| step_matches_doc(doc, ann, c, step))?;
    }
    Some(cur)
}

/// Enumerates the keyed element children of the node addressed by
/// `prefix` (the document root itself for an empty prefix), as query
/// steps. Used by the default `range` fallback, one retrieved version at
/// a time.
pub fn keyed_children_in_doc(doc: &Document, spec: &KeySpec, prefix: &[KeyQuery]) -> Vec<KeyQuery> {
    let Ok(ann) = annotate(doc, spec) else {
        return Vec::new();
    };
    let ids: Vec<NodeId> = if prefix.is_empty() {
        vec![doc.root()]
    } else {
        let Some(node) = find_with_ann(doc, &ann, prefix) else {
            return Vec::new();
        };
        doc.children(node).to_vec()
    };
    let mut out = Vec::new();
    for c in ids {
        if let (NodeKind::Element(_), Some(k)) = (&doc.node(c).kind, ann.key(c)) {
            out.push(KeyQuery {
                tag: doc.tag_name(c).to_owned(),
                parts: k
                    .parts
                    .iter()
                    .map(|p| (p.path.clone(), p.canon.clone()))
                    .collect(),
            });
        }
    }
    out
}

/// Copies the subtree rooted at `id` out of `doc` as a standalone
/// [`Document`] (the shape `as_of` returns).
pub fn subtree_doc(doc: &Document, id: NodeId) -> Option<Document> {
    let NodeKind::Element(_) = doc.node(id).kind else {
        return None;
    };
    let mut out = Document::new(doc.tag_name(id));
    let root = out.root();
    let attrs: Vec<(String, String)> = doc
        .attrs(id)
        .iter()
        .map(|(s, v)| (doc.syms().resolve(*s).to_owned(), v.clone()))
        .collect();
    for (n, v) in attrs {
        out.set_attr(root, &n, &v);
    }
    for &c in doc.children(id) {
        out.copy_subtree_from(doc, c, root);
    }
    Some(out)
}

fn step_matches_doc(
    doc: &Document,
    ann: &xarch_keys::Annotations,
    id: NodeId,
    step: &KeyQuery,
) -> bool {
    let NodeKind::Element(_) = doc.node(id).kind else {
        return false;
    };
    if doc.tag_name(id) != step.tag {
        return false;
    }
    let Some(k) = ann.key(id) else {
        return false;
    };
    k.parts.len() == step.parts.len()
        && k.parts
            .iter()
            .zip(step.parts.iter())
            .all(|(p, (qp, qv))| p.path == *qp && p.canon == *qv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xarch_xml::parse;

    fn spec() -> KeySpec {
        KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))\n(/db/rec, (val, {}))").unwrap()
    }

    #[test]
    fn find_in_doc_resolves_keyed_paths() {
        let doc =
            parse("<db><rec><id>1</id><val>x</val></rec><rec><id>2</id><val>y</val></rec></db>")
                .unwrap();
        let q = vec![
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", "2"),
        ];
        let id = find_in_doc(&doc, &spec(), &q).expect("resolves");
        assert_eq!(doc.tag_name(id), "rec");
        let sub = subtree_doc(&doc, id).unwrap();
        assert!(xarch_xml::writer::to_compact_string(&sub).contains("<id>2</id>"));
        // missing key value
        let q = vec![
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", "9"),
        ];
        assert!(find_in_doc(&doc, &spec(), &q).is_none());
        // wrong root
        assert!(find_in_doc(&doc, &spec(), &[KeyQuery::new("nope")]).is_none());
    }

    #[test]
    fn keyed_children_enumerate_in_label_order() {
        let doc =
            parse("<db><rec><id>2</id><val>y</val></rec><rec><id>1</id><val>x</val></rec></db>")
                .unwrap();
        let mut kids = keyed_children_in_doc(&doc, &spec(), &[KeyQuery::new("db")]);
        kids.sort();
        assert_eq!(kids.len(), 2);
        assert_eq!(kids[0].parts[0].1, "<id>1</id>");
        assert_eq!(kids[1].parts[0].1, "<id>2</id>");
        // empty prefix addresses the document root itself
        let top = keyed_children_in_doc(&doc, &spec(), &[]);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].tag, "db");
    }

    #[test]
    fn delta_counts_line_edits() {
        let a = parse("<db><rec><id>1</id><val>x</val></rec></db>").unwrap();
        let b = parse("<db><rec><id>1</id><val>y</val></rec></db>").unwrap();
        let d = delta(Some(&a), Some(&b), 1, 2);
        assert!(!d.is_same());
        assert!(d.removed >= 1 && d.added >= 1);
        assert!(d.script.contains('c') || d.script.contains('a') || d.script.contains('d'));
        let same = delta(Some(&a), Some(&a), 1, 2);
        assert!(same.is_same());
        let gone = delta(Some(&a), None, 1, 2);
        assert!(!gone.is_same());
        assert_eq!(gone.present, (true, false));
    }
}
