//! Timestamps as compact interval sets (§2).
//!
//! A [`TimeSet`] is a set of version numbers stored as sorted, disjoint,
//! non-adjacent *closed* intervals — the paper's `t="1-3,5,7-9"` notation.
//! "Since changes to our database are largely accretive and an element is
//! likely to exist for a long time, we can compactly represent its
//! timestamp using time intervals rather than a sequence of version
//! numbers" (§1).

use std::fmt;

/// A set of `u32` versions, run-length encoded as closed intervals.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct TimeSet {
    /// Sorted, disjoint, non-adjacent closed intervals `(lo, hi)`.
    runs: Vec<(u32, u32)>,
}

/// Error parsing the textual `1-3,5,7-9` form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeParseError(pub String);

impl fmt::Display for TimeParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid timestamp: {}", self.0)
    }
}

impl std::error::Error for TimeParseError {}

impl TimeSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A singleton set `{v}`.
    pub fn from_version(v: u32) -> Self {
        Self { runs: vec![(v, v)] }
    }

    /// The full range `lo..=hi` (empty if `lo > hi`).
    pub fn from_range(lo: u32, hi: u32) -> Self {
        if lo > hi {
            Self::new()
        } else {
            Self {
                runs: vec![(lo, hi)],
            }
        }
    }

    /// True if the set contains no versions.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of versions in the set.
    pub fn count(&self) -> u64 {
        self.runs.iter().map(|&(lo, hi)| (hi - lo) as u64 + 1).sum()
    }

    /// Number of intervals (the storage cost driver).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// The intervals themselves.
    pub fn intervals(&self) -> &[(u32, u32)] {
        &self.runs
    }

    /// Smallest version, if any.
    pub fn min(&self) -> Option<u32> {
        self.runs.first().map(|&(lo, _)| lo)
    }

    /// Largest version, if any.
    pub fn max(&self) -> Option<u32> {
        self.runs.last().map(|&(_, hi)| hi)
    }

    /// Membership test (binary search over runs).
    pub fn contains(&self, v: u32) -> bool {
        self.runs
            .binary_search_by(|&(lo, hi)| {
                if v < lo {
                    std::cmp::Ordering::Greater
                } else if v > hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Inserts one version, coalescing adjacent runs.
    pub fn insert(&mut self, v: u32) {
        // Find the first run with lo > v.
        let pos = self.runs.partition_point(|&(lo, _)| lo <= v);
        // Check the run before: may contain or be adjacent to v.
        if pos > 0 {
            let (lo, hi) = self.runs[pos - 1];
            if v <= hi {
                return; // already present
            }
            if v == hi + 1 {
                self.runs[pos - 1].1 = v;
                // maybe coalesce with the following run
                if pos < self.runs.len() && self.runs[pos].0 == v + 1 {
                    self.runs[pos - 1].1 = self.runs[pos].1;
                    self.runs.remove(pos);
                }
                return;
            }
            let _ = lo;
        }
        // Check the run after: v may extend it downwards.
        if pos < self.runs.len() && self.runs[pos].0 == v + 1 {
            self.runs[pos].0 = v;
            return;
        }
        self.runs.insert(pos, (v, v));
    }

    /// Removes one version, splitting a run if needed.
    pub fn remove(&mut self, v: u32) {
        let pos = match self.runs.binary_search_by(|&(lo, hi)| {
            if v < lo {
                std::cmp::Ordering::Greater
            } else if v > hi {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(p) => p,
            Err(_) => return,
        };
        let (lo, hi) = self.runs[pos];
        match (v == lo, v == hi) {
            (true, true) => {
                self.runs.remove(pos);
            }
            (true, false) => self.runs[pos].0 = v + 1,
            (false, true) => self.runs[pos].1 = v - 1,
            (false, false) => {
                self.runs[pos].1 = v - 1;
                self.runs.insert(pos + 1, (v + 1, hi));
            }
        }
    }

    /// Set union.
    pub fn union(&self, other: &TimeSet) -> TimeSet {
        let mut out: Vec<(u32, u32)> = Vec::with_capacity(self.runs.len() + other.runs.len());
        let mut a = self.runs.iter().peekable();
        let mut b = other.runs.iter().peekable();
        let push = |out: &mut Vec<(u32, u32)>, r: (u32, u32)| {
            if let Some(last) = out.last_mut() {
                // coalesce overlapping or adjacent runs
                if r.0 <= last.1.saturating_add(1) {
                    last.1 = last.1.max(r.1);
                    return;
                }
            }
            out.push(r);
        };
        loop {
            let next = match (a.peek(), b.peek()) {
                (Some(&&x), Some(&&y)) => {
                    if x.0 <= y.0 {
                        a.next();
                        x
                    } else {
                        b.next();
                        y
                    }
                }
                (Some(&&x), None) => {
                    a.next();
                    x
                }
                (None, Some(&&y)) => {
                    b.next();
                    y
                }
                (None, None) => break,
            };
            push(&mut out, next);
        }
        TimeSet { runs: out }
    }

    /// The subset of the set falling inside the closed window `lo..=hi` —
    /// the restriction a range query applies to an element's lifetime.
    pub fn clamp_range(&self, lo: u32, hi: u32) -> TimeSet {
        if lo > hi {
            return TimeSet::new();
        }
        TimeSet {
            runs: self
                .runs
                .iter()
                .filter_map(|&(a, b)| {
                    let (a, b) = (a.max(lo), b.min(hi));
                    (a <= b).then_some((a, b))
                })
                .collect(),
        }
    }

    /// True if `self ⊇ other` — the paper's archive invariant is that a
    /// node's timestamp is a superset of every descendant's.
    pub fn is_superset(&self, other: &TimeSet) -> bool {
        other.runs.iter().all(|&(lo, hi)| {
            // find run containing lo, check it extends to hi
            self.runs.iter().any(|&(slo, shi)| slo <= lo && hi <= shi)
        })
    }

    /// Iterates all versions in ascending order.
    pub fn versions(&self) -> impl Iterator<Item = u32> + '_ {
        self.runs.iter().flat_map(|&(lo, hi)| lo..=hi)
    }

    /// Parses the paper's notation, e.g. `1-3,5,7-9`. An empty string is
    /// the empty set.
    pub fn parse(s: &str) -> Result<TimeSet, TimeParseError> {
        let mut out = TimeSet::new();
        let s = s.trim();
        if s.is_empty() {
            return Ok(out);
        }
        for part in s.split(',') {
            let part = part.trim();
            let (lo, hi) = match part.split_once('-') {
                Some((a, b)) => {
                    let lo = a
                        .trim()
                        .parse::<u32>()
                        .map_err(|_| TimeParseError(s.into()))?;
                    let hi = b
                        .trim()
                        .parse::<u32>()
                        .map_err(|_| TimeParseError(s.into()))?;
                    (lo, hi)
                }
                None => {
                    let v = part.parse::<u32>().map_err(|_| TimeParseError(s.into()))?;
                    (v, v)
                }
            };
            if lo > hi {
                return Err(TimeParseError(s.into()));
            }
            for v in lo..=hi {
                out.insert(v);
            }
        }
        Ok(out)
    }

    /// Approximate serialized size of the timestamp in bytes (used by size
    /// accounting before the archive is rendered to XML).
    pub fn encoded_len(&self) -> usize {
        self.to_string().len()
    }
}

impl fmt::Display for TimeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, &(lo, hi)) in self.runs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            if lo == hi {
                write!(f, "{lo}")?;
            } else {
                write!(f, "{lo}-{hi}")?;
            }
        }
        Ok(())
    }
}

impl FromIterator<u32> for TimeSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut t = TimeSet::new();
        for v in iter {
            t.insert(v);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn paper_example_notation() {
        // "the time intervals [1-3,5,7-9] denotes the set {1,2,3,5,7,8,9}"
        let t = TimeSet::parse("1-3,5,7-9").unwrap();
        let got: Vec<u32> = t.versions().collect();
        assert_eq!(got, vec![1, 2, 3, 5, 7, 8, 9]);
        assert_eq!(t.to_string(), "1-3,5,7-9");
        assert_eq!(t.count(), 7);
        assert_eq!(t.run_count(), 3);
    }

    #[test]
    fn insert_coalesces() {
        let mut t = TimeSet::new();
        for v in [1, 3, 2] {
            t.insert(v);
        }
        assert_eq!(t.to_string(), "1-3");
        t.insert(5);
        assert_eq!(t.to_string(), "1-3,5");
        t.insert(4);
        assert_eq!(t.to_string(), "1-5");
        t.insert(4); // idempotent
        assert_eq!(t.to_string(), "1-5");
    }

    #[test]
    fn remove_splits() {
        let mut t = TimeSet::from_range(1, 5);
        t.remove(3);
        assert_eq!(t.to_string(), "1-2,4-5");
        t.remove(1);
        assert_eq!(t.to_string(), "2,4-5");
        t.remove(2);
        assert_eq!(t.to_string(), "4-5");
        t.remove(9); // absent: no-op
        assert_eq!(t.to_string(), "4-5");
    }

    #[test]
    fn contains_works_across_runs() {
        let t = TimeSet::parse("1-3,7,10-12").unwrap();
        for v in [1, 2, 3, 7, 10, 11, 12] {
            assert!(t.contains(v), "{v}");
        }
        for v in [0, 4, 6, 8, 9, 13] {
            assert!(!t.contains(v), "{v}");
        }
    }

    #[test]
    fn union_merges_and_coalesces() {
        let a = TimeSet::parse("1-3,8").unwrap();
        let b = TimeSet::parse("4-6,8,10").unwrap();
        assert_eq!(a.union(&b).to_string(), "1-6,8,10");
        assert_eq!(b.union(&a), a.union(&b));
        assert_eq!(a.union(&TimeSet::new()), a);
    }

    #[test]
    fn superset_relation() {
        let parent = TimeSet::parse("1-10").unwrap();
        let child = TimeSet::parse("2-4,7").unwrap();
        assert!(parent.is_superset(&child));
        assert!(!child.is_superset(&parent));
        assert!(parent.is_superset(&TimeSet::new()));
        let split = TimeSet::parse("1-4,6-10").unwrap();
        assert!(!split.is_superset(&TimeSet::parse("4-6").unwrap()));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TimeSet::parse("x").is_err());
        assert!(TimeSet::parse("3-1").is_err());
        assert!(TimeSet::parse("1,,2").is_err());
        assert_eq!(TimeSet::parse("").unwrap(), TimeSet::new());
    }

    #[test]
    fn display_parse_round_trip() {
        for s in ["1", "1-2", "1-3,5,7-9", "2,4,6,8", ""] {
            let t = TimeSet::parse(s).unwrap();
            assert_eq!(TimeSet::parse(&t.to_string()).unwrap(), t);
        }
    }

    #[test]
    fn min_max() {
        let t = TimeSet::parse("3-5,9").unwrap();
        assert_eq!(t.min(), Some(3));
        assert_eq!(t.max(), Some(9));
        assert_eq!(TimeSet::new().max(), None);
    }

    /// Model-based check against BTreeSet over a deterministic op sequence.
    #[test]
    fn model_based_ops() {
        let mut t = TimeSet::new();
        let mut model: BTreeSet<u32> = BTreeSet::new();
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..5000 {
            let v = (next() % 60) as u32;
            if next() % 3 == 0 {
                t.remove(v);
                model.remove(&v);
            } else {
                t.insert(v);
                model.insert(v);
            }
            // invariants
            for w in 0..60u32 {
                assert_eq!(t.contains(w), model.contains(&w));
            }
        }
        let got: Vec<u32> = t.versions().collect();
        let want: Vec<u32> = model.into_iter().collect();
        assert_eq!(got, want);
        // runs are canonical: sorted, disjoint, non-adjacent
        for w in t.intervals().windows(2) {
            assert!(
                w[0].1 + 1 < w[1].0,
                "non-canonical runs: {:?}",
                t.intervals()
            );
        }
    }
}
