//! Checkpoint state codecs for the in-memory backends.
//!
//! A durable store periodically serializes its materialized archive into
//! a *checkpoint block* (see `docs/FORMAT.md` §Checkpoint blocks) so that
//! reopen restores the snapshot and replays only the tail of the journal.
//! This module defines the state payloads for [`Archive`] and
//! [`ChunkedArchive`]; `xarch_extmem` encodes its own (its state *is* the
//! event stream), and the indexed wrappers reuse the inner backend's
//! state and rebuild their indexes from it.
//!
//! Every state payload starts with a one-byte backend tag so a restoring
//! store can tell "this checkpoint was taken by a different backend
//! configuration" (answered with `Ok(None)` — the caller falls back to a
//! full journal replay, which rebuilds correctly under the new
//! configuration) apart from "this checkpoint is damaged" (a positioned
//! [`StoreError::Corrupt`]).
//!
//! The byte grammar uses the shared [`crate::wire`] primitives; decoding
//! is panic-free and ends with [`Archive::check_invariants`], so a
//! corrupted-but-checksummed state can never produce a structurally
//! broken archive.

use xarch_keys::{KeyPart, KeySpec, KeyValue, NodeClass};
use xarch_xml::{Sym, SymbolTable};

use crate::archive::{AKind, ANode, ANodeId, Archive, Compaction};
use crate::chunk::ChunkedArchive;
use crate::store::StoreError;
use crate::timeset::TimeSet;
use crate::wire::{get_bytes, get_str, get_varint, put_bytes, put_str, put_varint, WireError};

/// State tag: a plain in-memory [`Archive`] snapshot.
pub const STATE_ARCHIVE: u8 = 1;
/// State tag: a [`ChunkedArchive`] snapshot (per-chunk archive bodies).
pub const STATE_CHUNKED: u8 = 2;
/// State tag: an `xarch_extmem::ExtArchive` snapshot (raw event stream).
pub const STATE_EXTMEM: u8 = 3;
/// State tag: an `xarch_index::IndexedStore` snapshot (inner state plus
/// the serialized query sidecar).
pub const STATE_INDEXED_STORE: u8 = 5;

/// Converts a positioned wire failure into the storage error vocabulary.
pub fn corrupt(e: WireError) -> StoreError {
    StoreError::Corrupt {
        offset: e.offset as u64,
        reason: format!("checkpoint state: {}", e.reason),
    }
}

fn corrupt_at(pos: usize, reason: impl Into<String>) -> StoreError {
    StoreError::Corrupt {
        offset: pos as u64,
        reason: reason.into(),
    }
}

/// The spec's source text: its non-implied keys, one per line — the same
/// canonical rendering the storage superblock records.
pub fn spec_source(spec: &KeySpec) -> String {
    spec.keys()
        .iter()
        .filter(|k| !k.implied)
        .map(|k| k.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

fn compaction_id(c: Compaction) -> u8 {
    match c {
        Compaction::Alternatives => 0,
        Compaction::Weave => 1,
    }
}

fn class_id(c: NodeClass) -> u8 {
    match c {
        NodeClass::Keyed => 0,
        NodeClass::Frontier => 1,
        NodeClass::BeyondFrontier => 2,
        NodeClass::Unkeyed => 3,
        NodeClass::Text => 4,
    }
}

fn class_from_id(id: u8) -> Option<NodeClass> {
    Some(match id {
        0 => NodeClass::Keyed,
        1 => NodeClass::Frontier,
        2 => NodeClass::BeyondFrontier,
        3 => NodeClass::Unkeyed,
        4 => NodeClass::Text,
        _ => return None,
    })
}

/// Appends a [`TimeSet`] as `varint run-count` then per run
/// `varint lo, varint (hi - lo)` — shared by the archive state codec and
/// the query-sidecar codec in `xarch_index`.
pub fn put_timeset(out: &mut Vec<u8>, t: &TimeSet) {
    let runs = t.intervals();
    put_varint(out, runs.len() as u64);
    for &(lo, hi) in runs {
        put_varint(out, lo as u64);
        put_varint(out, (hi - lo) as u64);
    }
}

fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32, StoreError> {
    let at = *pos;
    let v = get_varint(buf, pos).map_err(corrupt)?;
    u32::try_from(v).map_err(|_| corrupt_at(at, "checkpoint state: u32 overflow"))
}

fn get_byte(buf: &[u8], pos: &mut usize) -> Result<u8, StoreError> {
    let Some(&b) = buf.get(*pos) else {
        return Err(corrupt_at(*pos, "checkpoint state: truncated"));
    };
    *pos += 1;
    Ok(b)
}

/// Decodes a [`TimeSet`] written by [`put_timeset`], rejecting unordered
/// or overflowing intervals.
pub fn get_timeset(buf: &[u8], pos: &mut usize) -> Result<TimeSet, StoreError> {
    let runs = get_varint(buf, pos).map_err(corrupt)? as usize;
    // a run costs ≥ 2 encoded bytes; an implausible count is corruption
    if runs > buf.len() / 2 + 1 {
        return Err(corrupt_at(*pos, "checkpoint state: implausible run count"));
    }
    let mut t = TimeSet::new();
    let mut prev_hi: Option<u32> = None;
    for _ in 0..runs {
        let at = *pos;
        let lo = get_u32(buf, pos)?;
        let span = get_u32(buf, pos)?;
        let hi = lo
            .checked_add(span)
            .ok_or_else(|| corrupt_at(at, "checkpoint state: interval overflow"))?;
        if lo == 0 || prev_hi.is_some_and(|p| lo <= p) {
            return Err(corrupt_at(at, "checkpoint state: intervals out of order"));
        }
        prev_hi = Some(hi);
        for v in lo..=hi {
            t.insert(v);
        }
    }
    Ok(t)
}

/// Appends the body of one [`Archive`] (no backend tag).
fn put_archive_body(out: &mut Vec<u8>, a: &Archive) {
    put_varint(out, a.latest() as u64);
    out.push(compaction_id(a.compaction()));
    put_str(out, &spec_source(a.spec()));
    let syms = a.syms();
    put_varint(out, syms.len() as u64);
    for (_, name) in syms.iter() {
        put_str(out, name);
    }
    put_varint(out, a.len() as u64);
    for i in 0..a.len() {
        let n = a.node(ANodeId(i as u32));
        match &n.kind {
            AKind::Element(s) => {
                out.push(0);
                put_varint(out, s.index() as u64);
            }
            AKind::Text(t) => {
                out.push(1);
                put_str(out, t);
            }
            AKind::Stamp => out.push(2),
        }
        put_varint(out, n.parent.map_or(0, |p| p.0 as u64 + 1));
        put_varint(out, n.children.len() as u64);
        for c in &n.children {
            put_varint(out, c.0 as u64);
        }
        put_varint(out, n.attrs.len() as u64);
        for (s, v) in &n.attrs {
            put_varint(out, s.index() as u64);
            put_str(out, v);
        }
        match &n.time {
            None => out.push(0),
            Some(t) => {
                out.push(1);
                put_timeset(out, t);
            }
        }
        match &n.key {
            None => out.push(0),
            Some(k) => {
                out.push(1);
                put_varint(out, k.parts.len() as u64);
                for p in &k.parts {
                    put_str(out, &p.path);
                    put_str(out, &p.canon);
                    out.extend_from_slice(&p.fp.to_le_bytes());
                }
            }
        }
        out.push(class_id(n.class));
    }
    put_varint(out, a.root().0 as u64);
}

/// Decodes one archive body at `*pos`. `expect` carries the restoring
/// store's spec and compaction mode; a mismatch answers `Ok(None)` so the
/// caller can fall back to a full replay under its own configuration.
fn get_archive_body(
    buf: &[u8],
    pos: &mut usize,
    expect_spec: &KeySpec,
    expect_compaction: Compaction,
) -> Result<Option<Archive>, StoreError> {
    let latest = get_u32(buf, pos)?;
    let compaction = match get_byte(buf, pos)? {
        0 => Compaction::Alternatives,
        1 => Compaction::Weave,
        _ => return Err(corrupt_at(*pos - 1, "checkpoint state: bad compaction id")),
    };
    let spec_src = get_str(buf, pos).map_err(corrupt)?;
    let spec = KeySpec::parse(&spec_src)
        .map_err(|e| corrupt_at(*pos, format!("checkpoint state: bad key spec: {e}")))?;
    if spec != *expect_spec || compaction != expect_compaction {
        return Ok(None);
    }

    let sym_count = get_varint(buf, pos).map_err(corrupt)? as usize;
    if sym_count > buf.len() {
        return Err(corrupt_at(
            *pos,
            "checkpoint state: implausible symbol count",
        ));
    }
    let mut syms = SymbolTable::new();
    for _ in 0..sym_count {
        let name = get_str(buf, pos).map_err(corrupt)?;
        syms.intern(&name);
    }
    if syms.len() != sym_count {
        return Err(corrupt_at(*pos, "checkpoint state: duplicate symbol"));
    }

    let node_count = get_varint(buf, pos).map_err(corrupt)? as usize;
    if node_count == 0 || node_count > buf.len() {
        return Err(corrupt_at(*pos, "checkpoint state: implausible node count"));
    }
    let get_sym = |buf: &[u8], pos: &mut usize| -> Result<Sym, StoreError> {
        let at = *pos;
        let i = get_u32(buf, pos)?;
        if (i as usize) < sym_count {
            Ok(Sym(i))
        } else {
            Err(corrupt_at(at, "checkpoint state: symbol out of range"))
        }
    };
    let get_id = |buf: &[u8], pos: &mut usize| -> Result<ANodeId, StoreError> {
        let at = *pos;
        let i = get_u32(buf, pos)?;
        if (i as usize) < node_count {
            Ok(ANodeId(i))
        } else {
            Err(corrupt_at(at, "checkpoint state: node id out of range"))
        }
    };
    let mut nodes = Vec::with_capacity(node_count);
    for _ in 0..node_count {
        let kind = match get_byte(buf, pos)? {
            0 => AKind::Element(get_sym(buf, pos)?),
            1 => AKind::Text(get_str(buf, pos).map_err(corrupt)?),
            2 => AKind::Stamp,
            _ => return Err(corrupt_at(*pos - 1, "checkpoint state: bad node kind")),
        };
        let at = *pos;
        let parent_raw = get_u32(buf, pos)?;
        let parent = match parent_raw {
            0 => None,
            p if (p as usize) <= node_count => Some(ANodeId(p - 1)),
            _ => return Err(corrupt_at(at, "checkpoint state: parent out of range")),
        };
        let child_count = get_varint(buf, pos).map_err(corrupt)? as usize;
        if child_count > buf.len() {
            return Err(corrupt_at(
                *pos,
                "checkpoint state: implausible child count",
            ));
        }
        let mut children = Vec::with_capacity(child_count);
        for _ in 0..child_count {
            children.push(get_id(buf, pos)?);
        }
        let attr_count = get_varint(buf, pos).map_err(corrupt)? as usize;
        if attr_count > buf.len() {
            return Err(corrupt_at(*pos, "checkpoint state: implausible attr count"));
        }
        let mut attrs = Vec::with_capacity(attr_count);
        for _ in 0..attr_count {
            let s = get_sym(buf, pos)?;
            let v = get_str(buf, pos).map_err(corrupt)?;
            attrs.push((s, v));
        }
        let time = match get_byte(buf, pos)? {
            0 => None,
            1 => Some(get_timeset(buf, pos)?),
            _ => return Err(corrupt_at(*pos - 1, "checkpoint state: bad time flag")),
        };
        let key = match get_byte(buf, pos)? {
            0 => None,
            1 => {
                let part_count = get_varint(buf, pos).map_err(corrupt)? as usize;
                if part_count > buf.len() {
                    return Err(corrupt_at(*pos, "checkpoint state: implausible key arity"));
                }
                let mut parts = Vec::with_capacity(part_count);
                for _ in 0..part_count {
                    let path = get_str(buf, pos).map_err(corrupt)?;
                    let canon = get_str(buf, pos).map_err(corrupt)?;
                    let at = *pos;
                    let Some(fp_bytes) = buf.get(at..at + 16) else {
                        return Err(corrupt_at(at, "checkpoint state: truncated fingerprint"));
                    };
                    *pos += 16;
                    let mut fp = [0u8; 16];
                    fp.copy_from_slice(fp_bytes);
                    parts.push(KeyPart {
                        path,
                        canon,
                        fp: u128::from_le_bytes(fp),
                    });
                }
                Some(KeyValue { parts })
            }
            _ => return Err(corrupt_at(*pos - 1, "checkpoint state: bad key flag")),
        };
        let class = class_from_id(get_byte(buf, pos)?)
            .ok_or_else(|| corrupt_at(*pos - 1, "checkpoint state: bad node class"))?;
        nodes.push(ANode {
            kind,
            parent,
            children,
            attrs,
            time,
            key,
            class,
        });
    }
    let root = get_id(buf, pos)?;

    // Iterative tree validation BEFORE the arena is handed to any
    // recursive walker: a corrupted child id can form a cycle or share a
    // subtree, and recursion over either overflows the stack instead of
    // erroring. Every child edge must lead to an unvisited node whose
    // parent pointer agrees.
    if nodes.get(root.index()).is_some_and(|r| r.parent.is_some()) {
        return Err(corrupt_at(*pos, "checkpoint state: root has a parent"));
    }
    let mut visited = vec![false; node_count];
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        let Some(seen) = visited.get_mut(id.index()) else {
            return Err(corrupt_at(*pos, "checkpoint state: node id out of range"));
        };
        if *seen {
            return Err(corrupt_at(*pos, "checkpoint state: node cycle"));
        }
        *seen = true;
        let Some(n) = nodes.get(id.index()) else {
            return Err(corrupt_at(*pos, "checkpoint state: node id out of range"));
        };
        for &c in &n.children {
            let child_parent = nodes.get(c.index()).and_then(|cn| cn.parent);
            if child_parent != Some(id) {
                return Err(corrupt_at(*pos, "checkpoint state: parent pointer skew"));
            }
            stack.push(c);
        }
    }
    if !visited.iter().all(|&v| v) {
        return Err(corrupt_at(*pos, "checkpoint state: unreachable nodes"));
    }

    let archive = Archive::from_arena(spec, compaction, syms, nodes, root, latest);
    archive
        .check_invariants()
        .map_err(|e| corrupt_at(*pos, format!("checkpoint state: broken invariant: {e}")))?;
    Ok(Some(archive))
}

/// Serializes an [`Archive`] into a tagged checkpoint state payload.
pub fn encode_archive(a: &Archive) -> Vec<u8> {
    let mut out = vec![STATE_ARCHIVE];
    put_archive_body(&mut out, a);
    out
}

/// Restores an [`Archive`] from a tagged state payload.
///
/// Answers `Ok(None)` when the payload was taken under a different
/// backend tag, key spec, or compaction mode — the caller falls back to a
/// full journal replay. Damaged payloads are a positioned
/// [`StoreError::Corrupt`].
pub fn decode_archive(
    state: &[u8],
    expect_spec: &KeySpec,
    expect_compaction: Compaction,
) -> Result<Option<Archive>, StoreError> {
    let mut pos = 0;
    if get_byte(state, &mut pos)? != STATE_ARCHIVE {
        return Ok(None);
    }
    let Some(a) = get_archive_body(state, &mut pos, expect_spec, expect_compaction)? else {
        return Ok(None);
    };
    if pos != state.len() {
        return Err(corrupt_at(pos, "checkpoint state: trailing bytes"));
    }
    Ok(Some(a))
}

/// Serializes a [`ChunkedArchive`] into a tagged checkpoint state
/// payload: the chunk layout plus one archive body per chunk.
pub fn encode_chunked(c: &ChunkedArchive) -> Vec<u8> {
    let mut out = vec![STATE_CHUNKED];
    put_varint(&mut out, c.chunk_count() as u64);
    match c.root_tag() {
        None => out.push(0),
        Some(t) => {
            out.push(1);
            put_str(&mut out, t);
        }
    }
    put_varint(&mut out, c.latest() as u64);
    for chunk in c.chunks() {
        let mut body = Vec::new();
        put_archive_body(&mut body, chunk);
        put_bytes(&mut out, &body);
    }
    out
}

/// Restores a [`ChunkedArchive`] from a tagged state payload. The same
/// `Ok(None)` fallback contract as [`decode_archive`]; a chunk-count
/// mismatch with the restoring store's configuration also answers
/// `Ok(None)`.
pub fn decode_chunked(
    state: &[u8],
    expect_spec: &KeySpec,
    expect_chunks: usize,
    expect_compaction: Compaction,
) -> Result<Option<ChunkedArchive>, StoreError> {
    let mut pos = 0;
    if get_byte(state, &mut pos)? != STATE_CHUNKED {
        return Ok(None);
    }
    let chunk_count = get_varint(state, &mut pos).map_err(corrupt)? as usize;
    if chunk_count != expect_chunks {
        return Ok(None);
    }
    let root_tag = match get_byte(state, &mut pos)? {
        0 => None,
        1 => Some(get_str(state, &mut pos).map_err(corrupt)?),
        _ => return Err(corrupt_at(pos - 1, "checkpoint state: bad root-tag flag")),
    };
    let latest = get_u32(state, &mut pos)?;
    let mut chunks = Vec::with_capacity(chunk_count);
    for _ in 0..chunk_count {
        let body = get_bytes(state, &mut pos).map_err(corrupt)?;
        let mut body_pos = 0;
        let Some(a) = get_archive_body(body, &mut body_pos, expect_spec, expect_compaction)? else {
            return Ok(None);
        };
        if body_pos != body.len() {
            return Err(corrupt_at(
                body_pos,
                "checkpoint state: trailing chunk bytes",
            ));
        }
        if a.latest() != latest {
            return Err(corrupt_at(body_pos, "checkpoint state: chunk version skew"));
        }
        chunks.push(a);
    }
    if pos != state.len() {
        return Err(corrupt_at(pos, "checkpoint state: trailing bytes"));
    }
    Ok(Some(ChunkedArchive::from_parts(
        expect_spec.clone(),
        chunks,
        root_tag,
        latest,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::VersionStore;

    fn spec() -> KeySpec {
        KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))\n(/db/rec, (val, {}))").unwrap()
    }

    fn docs() -> Vec<xarch_xml::Document> {
        [
            "<db><rec><id>1</id><val>a</val></rec></db>",
            "<db><rec><id>1</id><val>b</val></rec><rec><id>2</id><val>c</val></rec></db>",
            "<db><rec><id>2</id><val>c2</val></rec></db>",
        ]
        .iter()
        .map(|s| xarch_xml::parse(s).unwrap())
        .collect()
    }

    fn populated() -> Archive {
        let mut a = Archive::new(spec());
        for d in &docs() {
            a.add_version(d).unwrap();
        }
        a.add_empty_version();
        a
    }

    #[test]
    fn archive_state_round_trips_byte_identically() {
        let a = populated();
        let state = encode_archive(&a);
        let b = decode_archive(&state, &spec(), Compaction::Alternatives)
            .unwrap()
            .expect("matching config restores");
        assert_eq!(b.latest(), a.latest());
        for v in 1..=a.latest() {
            let mut want = Vec::new();
            let mut got = Vec::new();
            let w = a.retrieve_into(v, &mut want).unwrap();
            let g = b.retrieve_into(v, &mut got).unwrap();
            assert_eq!(w, g, "v{v} existence");
            assert_eq!(want, got, "v{v} bytes");
        }
        // and the restored archive keeps merging: identical next version
        let next = xarch_xml::parse("<db><rec><id>3</id><val>z</val></rec></db>").unwrap();
        let mut a2 = a.clone();
        let mut b2 = b.clone();
        a2.add_version(&next).unwrap();
        b2.add_version(&next).unwrap();
        let mut want = Vec::new();
        let mut got = Vec::new();
        a2.retrieve_into(a2.latest(), &mut want).unwrap();
        b2.retrieve_into(b2.latest(), &mut got).unwrap();
        assert_eq!(want, got);
    }

    #[test]
    fn mismatched_configuration_falls_back_not_errors() {
        let a = populated();
        let state = encode_archive(&a);
        // compaction mismatch
        assert!(decode_archive(&state, &spec(), Compaction::Weave)
            .unwrap()
            .is_none());
        // spec mismatch
        let other = KeySpec::parse("(/, (db, {}))\n(/db, (item, {sku}))").unwrap();
        assert!(decode_archive(&state, &other, Compaction::Alternatives)
            .unwrap()
            .is_none());
        // foreign backend tag
        let mut tagged = state.clone();
        tagged[0] = STATE_EXTMEM;
        assert!(decode_archive(&tagged, &spec(), Compaction::Alternatives)
            .unwrap()
            .is_none());
    }

    #[test]
    fn bit_flip_sweep_over_state_never_panics() {
        let a = populated();
        let state = encode_archive(&a);
        for i in 0..state.len() {
            let mut mutated = state.clone();
            mutated[i] ^= 1 << (i % 8);
            // any answer is fine except a panic or a structurally broken
            // archive claiming to be valid
            if let Ok(Some(b)) = decode_archive(&mutated, &spec(), Compaction::Alternatives) {
                b.check_invariants().unwrap();
            }
        }
    }

    #[test]
    fn chunked_state_round_trips() {
        let mut c = ChunkedArchive::new(spec(), 3);
        for d in &docs() {
            c.add_version(d).unwrap();
        }
        let state = encode_chunked(&c);
        let r = decode_chunked(&state, &spec(), 3, Compaction::Alternatives)
            .unwrap()
            .expect("matching config restores");
        assert_eq!(r.latest(), c.latest());
        for v in 1..=c.latest() {
            let mut want = Vec::new();
            let mut got = Vec::new();
            let w = c.retrieve_into(v, &mut want).unwrap();
            let g = r.retrieve_into(v, &mut got).unwrap();
            assert_eq!(w, g);
            assert_eq!(want, got);
        }
        // chunk-count mismatch falls back
        assert!(decode_chunked(&state, &spec(), 4, Compaction::Alternatives)
            .unwrap()
            .is_none());
    }

    #[test]
    fn version_store_trait_checkpoints_through_the_default_methods() {
        let mut a = populated();
        let state = VersionStore::checkpoint_state(&a)
            .unwrap()
            .expect("in-memory archive supports checkpoints");
        let mut fresh = Archive::new(spec());
        assert!(fresh.restore_checkpoint(&state).unwrap());
        assert_eq!(fresh.latest(), a.latest());
        // restore refuses to clobber a populated store
        assert!(a.restore_checkpoint(&state).is_err());
    }
}
