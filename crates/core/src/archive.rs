//! The archive data structure (Fig 4): all versions merged into one tree.
//!
//! An [`Archive`] is an arena of [`ANode`]s. Element and text nodes mirror
//! the document model of `xarch-xml`, extended with:
//!
//! * an optional [`TimeSet`] — `None` means the timestamp is *inherited*
//!   from the parent (§1's "inheritance of timestamps");
//! * the node's key value and [`NodeClass`], so later merges can pair
//!   children without re-annotating the archive;
//! * **stamp nodes** ([`AKind::Stamp`]) — the `<T t="...">` wrappers that
//!   hold alternative contents beneath frontier nodes (Fig 4's `sal`).
//!
//! The arena root is the paper's synthetic `root` node, whose timestamp is
//! `[1..latest]`; it exists so that empty versions are representable (§2's
//! footnote about version 5 of the company database).

use std::fmt;

use xarch_keys::{KeyError, KeySpec, KeyValue, NodeClass};
use xarch_xml::{Sym, SymbolTable};

use crate::timeset::TimeSet;

/// Index of a node in the archive arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ANodeId(pub u32);

impl ANodeId {
    /// The node's position in the arena, as a `usize` for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Node kinds of the archive tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AKind {
    /// An element node with an interned tag.
    Element(Sym),
    /// A text node.
    Text(String),
    /// A timestamp node `<T t="...">` grouping one alternative content of a
    /// frontier node. Its `time` is always `Some`.
    Stamp,
}

/// One archive node.
#[derive(Debug, Clone)]
pub struct ANode {
    /// Element / text / timestamp-alternative discriminant.
    pub kind: AKind,
    /// Parent node; `None` only for the root.
    pub parent: Option<ANodeId>,
    /// Child nodes in document order.
    pub children: Vec<ANodeId>,
    /// Attributes as interned-name / value pairs, in document order.
    pub attrs: Vec<(Sym, String)>,
    /// `None` = inherit the parent's timestamp.
    pub time: Option<TimeSet>,
    /// Key value for keyed element nodes.
    pub key: Option<KeyValue>,
    /// Classification relative to the key structure.
    pub class: NodeClass,
}

/// How contents beneath frontier nodes are compacted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Compaction {
    /// The basic scheme of §4.2: each distinct content is one `<T>`
    /// alternative (Fig 8).
    #[default]
    Alternatives,
    /// "Further compaction" (§4.2, Fig 10): contents are woven SCCS-style,
    /// so shared sub-elements across versions are stored once.
    Weave,
}

/// Errors raised while merging a version into an archive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// The incoming version violates the key specification.
    Key(KeyError),
    /// The incoming version's root element is not covered by a root-level
    /// key such as `(/, (db, {}))`.
    UnkeyedRoot(String),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Key(e) => write!(f, "{e}"),
            MergeError::UnkeyedRoot(tag) => {
                write!(f, "document root <{tag}> has no root-level key in the spec")
            }
        }
    }
}

impl std::error::Error for MergeError {}

impl From<KeyError> for MergeError {
    fn from(e: KeyError) -> Self {
        MergeError::Key(e)
    }
}

/// Aggregate statistics of an archive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchiveStats {
    /// Element nodes in the merged tree.
    pub elements: usize,
    /// Text nodes in the merged tree.
    pub texts: usize,
    /// `<T>` timestamp-alternative nodes.
    pub stamps: usize,
    /// Nodes carrying an explicit (non-inherited) timestamp.
    pub explicit_times: usize,
    /// Total interval count across explicit timestamps.
    pub intervals: usize,
}

/// The merged archive of all versions.
#[derive(Debug, Clone)]
pub struct Archive {
    nodes: Vec<ANode>,
    syms: SymbolTable,
    root: ANodeId,
    latest: u32,
    spec: KeySpec,
    compaction: Compaction,
}

impl Archive {
    /// Creates an empty archive governed by `spec`.
    pub fn new(spec: KeySpec) -> Self {
        Self::with_compaction(spec, Compaction::default())
    }

    /// Creates an empty archive with an explicit compaction mode.
    pub fn with_compaction(spec: KeySpec, compaction: Compaction) -> Self {
        let mut syms = SymbolTable::new();
        let root_tag = syms.intern("root");
        let root = ANode {
            kind: AKind::Element(root_tag),
            parent: None,
            children: Vec::new(),
            attrs: Vec::new(),
            time: Some(TimeSet::new()),
            key: None,
            class: NodeClass::Keyed,
        };
        Self {
            nodes: vec![root],
            syms,
            root: ANodeId(0),
            latest: 0,
            spec,
            compaction,
        }
    }

    /// Rebuilds an archive from a deserialized arena (checkpoint
    /// restore). The caller (`crate::state`) has range-checked every id
    /// and runs [`Archive::check_invariants`] on the result.
    pub(crate) fn from_arena(
        spec: KeySpec,
        compaction: Compaction,
        syms: SymbolTable,
        nodes: Vec<ANode>,
        root: ANodeId,
        latest: u32,
    ) -> Self {
        Self {
            nodes,
            syms,
            root,
            latest,
            spec,
            compaction,
        }
    }

    /// The synthetic root node.
    #[inline]
    pub fn root(&self) -> ANodeId {
        self.root
    }

    /// Number of versions archived so far.
    pub fn latest(&self) -> u32 {
        self.latest
    }

    /// The governing key specification.
    pub fn spec(&self) -> &KeySpec {
        &self.spec
    }

    /// The compaction mode.
    pub fn compaction(&self) -> Compaction {
        self.compaction
    }

    /// The symbol table.
    pub fn syms(&self) -> &SymbolTable {
        &self.syms
    }

    /// Borrow a node.
    #[inline]
    pub fn node(&self, id: ANodeId) -> &ANode {
        &self.nodes[id.index()]
    }

    /// Mutably borrow a node (crate-internal; invariants are maintained by
    /// the merge algorithms).
    #[inline]
    pub(crate) fn node_mut(&mut self, id: ANodeId) -> &mut ANode {
        &mut self.nodes[id.index()]
    }

    /// Children of a node.
    #[inline]
    pub fn children(&self, id: ANodeId) -> &[ANodeId] {
        &self.nodes[id.index()].children
    }

    /// Tag name of an element node.
    pub fn tag_name(&self, id: ANodeId) -> Option<&str> {
        match self.node(id).kind {
            AKind::Element(s) => Some(self.syms.resolve(s)),
            _ => None,
        }
    }

    /// Number of arena slots.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no version has been archived.
    pub fn is_empty(&self) -> bool {
        self.latest == 0
    }

    pub(crate) fn intern(&mut self, name: &str) -> Sym {
        self.syms.intern(name)
    }

    pub(crate) fn bump_version(&mut self) -> u32 {
        self.latest += 1;
        self.latest
    }

    pub(crate) fn set_latest(&mut self, latest: u32) {
        self.latest = latest;
    }

    /// Allocates a node and links it under `parent` (append).
    pub(crate) fn push_node(&mut self, parent: ANodeId, node: ANode) -> ANodeId {
        let id = ANodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.nodes[id.index()].parent = Some(parent);
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Allocates a detached node (the caller wires `children`).
    pub(crate) fn alloc_detached(&mut self, node: ANode) -> ANodeId {
        let id = ANodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Re-parents `child` under `parent` (append). The child must currently
    /// be detached.
    pub(crate) fn attach(&mut self, parent: ANodeId, child: ANodeId) {
        self.nodes[child.index()].parent = Some(parent);
        self.nodes[parent.index()].children.push(child);
    }

    /// The *effective* timestamp of a node: its own, or the nearest
    /// ancestor's ("If a node does not have a timestamp, it is assumed to
    /// inherit the timestamp of its parent", §2).
    pub fn effective_time(&self, mut id: ANodeId) -> TimeSet {
        loop {
            if let Some(t) = &self.node(id).time {
                return t.clone();
            }
            match self.node(id).parent {
                Some(p) => id = p,
                None => return TimeSet::new(),
            }
        }
    }

    /// True if node `id` exists in version `v`.
    pub fn exists_at(&self, id: ANodeId, v: u32) -> bool {
        self.effective_time(id).contains(v)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> ArchiveStats {
        let mut s = ArchiveStats {
            elements: 0,
            texts: 0,
            stamps: 0,
            explicit_times: 0,
            intervals: 0,
        };
        self.stats_rec(self.root, &mut s);
        s
    }

    fn stats_rec(&self, id: ANodeId, s: &mut ArchiveStats) {
        let n = self.node(id);
        match n.kind {
            AKind::Element(_) => s.elements += 1,
            AKind::Text(_) => s.texts += 1,
            AKind::Stamp => s.stamps += 1,
        }
        if let Some(t) = &n.time {
            s.explicit_times += 1;
            s.intervals += t.run_count();
        }
        for &c in &n.children {
            self.stats_rec(c, s);
        }
    }

    /// Aggregate statistics of the archive *as it stood* after version `v`
    /// merged. A node counts iff its effective timestamp intersects
    /// `1..=v`; merging later versions never changes that membership
    /// (append-only: a merge decides only its own version number), so the
    /// answer is a pure function of the first `v` versions and stays
    /// fixed while the live archive grows. Explicit-time and interval
    /// counts follow the canonical clamped rendering rule of
    /// [`Archive::to_xml_at`]: a timestamp counts as explicit iff its
    /// clamp to `1..=v` differs from the parent's clamped effective time.
    pub fn stats_at(&self, v: u32) -> ArchiveStats {
        let mut s = ArchiveStats {
            elements: 0,
            texts: 0,
            stamps: 0,
            explicit_times: 0,
            intervals: 0,
        };
        // The root always counts (its clamped time is explicit by
        // definition — `to_xml_at` always wraps the root), even at v=0
        // when its clamped timestamp is empty.
        let root_time = self.effective_time(self.root).clamp_range(1, v);
        s.elements += 1;
        s.explicit_times += 1;
        s.intervals += root_time.run_count();
        let children: Vec<ANodeId> = self.node(self.root).children.clone();
        for c in children {
            self.stats_at_rec(c, &root_time, v, &mut s);
        }
        s
    }

    fn stats_at_rec(&self, id: ANodeId, parent_eff: &TimeSet, v: u32, s: &mut ArchiveStats) {
        let n = self.node(id);
        let clamped = match &n.time {
            Some(t) => t.clamp_range(1, v),
            None => parent_eff.clone(),
        };
        if clamped.is_empty() {
            // Invisible at every version ≤ v — the node (and, by the §2
            // superset invariant, its whole subtree) joined later.
            return;
        }
        match n.kind {
            AKind::Element(_) => s.elements += 1,
            AKind::Text(_) => s.texts += 1,
            AKind::Stamp => {
                // Canonical stamp elision: a merge only wraps a text
                // alternative in a stamp when it does NOT span its
                // element's whole lifetime. If the clamp to `1..=v` makes
                // this the sole surviving alternative covering the
                // parent's entire clamped existence, a serial replay of
                // versions `1..=v` would have stored it unwrapped — count
                // it that way, or the answer would depend on merges > v.
                if clamped == *parent_eff {
                    for &c in &n.children {
                        self.stats_at_rec(c, parent_eff, v, s);
                    }
                    return;
                }
                s.stamps += 1;
            }
        }
        // Canonical explicitness: a (non-elided) stamp always renders with
        // its clamped time; any other node renders a wrapper iff its
        // clamped time differs from the parent's clamped effective time.
        let explicit =
            matches!(n.kind, AKind::Stamp) || (n.time.is_some() && clamped != *parent_eff);
        if explicit {
            s.explicit_times += 1;
            s.intervals += clamped.run_count();
        }
        for &c in &n.children {
            self.stats_at_rec(c, &clamped, v, s);
        }
    }

    /// Checks the structural invariants of the archive, returning a
    /// description of the first violation (tests call this after every
    /// merge):
    ///
    /// 1. a node's effective timestamp is a superset of every child's
    ///    effective timestamp (the paper's §2 property);
    /// 2. stamp nodes carry an explicit timestamp and appear only beneath
    ///    frontier nodes (or beneath unkeyed fallback nodes);
    /// 3. the root's timestamp is exactly `1..=latest`.
    pub fn check_invariants(&self) -> Result<(), String> {
        let root_time = self
            .node(self.root)
            .time
            .clone()
            .ok_or("root must carry a timestamp")?;
        if self.latest > 0 && root_time != TimeSet::from_range(1, self.latest) {
            return Err(format!("root timestamp {root_time} != 1-{}", self.latest));
        }
        self.check_rec(self.root, &root_time)
    }

    fn check_rec(&self, id: ANodeId, inherited: &TimeSet) -> Result<(), String> {
        let n = self.node(id);
        let eff = match &n.time {
            Some(t) => {
                if !inherited.is_superset(t) {
                    return Err(format!(
                        "node {id:?}: time {t} not a subset of parent's {inherited}"
                    ));
                }
                t.clone()
            }
            None => inherited.clone(),
        };
        if matches!(n.kind, AKind::Stamp) && n.time.is_none() {
            return Err(format!("stamp node {id:?} without explicit timestamp"));
        }
        for &c in &n.children {
            self.check_rec(c, &eff)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> KeySpec {
        KeySpec::parse("(/, (db, {}))").unwrap()
    }

    #[test]
    fn new_archive_is_empty() {
        let a = Archive::new(spec());
        assert!(a.is_empty());
        assert_eq!(a.latest(), 0);
        assert_eq!(a.tag_name(a.root()), Some("root"));
        a.check_invariants().unwrap();
    }

    #[test]
    fn effective_time_inherits() {
        let mut a = Archive::new(spec());
        let root = a.root();
        a.node_mut(root).time = Some(TimeSet::from_range(1, 4));
        a.latest = 4;
        let sym = a.intern("db");
        let db = a.push_node(
            root,
            ANode {
                kind: AKind::Element(sym),
                parent: None,
                children: Vec::new(),
                attrs: Vec::new(),
                time: None,
                key: None,
                class: NodeClass::Keyed,
            },
        );
        assert_eq!(a.effective_time(db), TimeSet::from_range(1, 4));
        assert!(a.exists_at(db, 2));
        assert!(!a.exists_at(db, 5));
        a.check_invariants().unwrap();
    }

    #[test]
    fn invariant_catches_non_subset_child() {
        let mut a = Archive::new(spec());
        let root = a.root();
        a.node_mut(root).time = Some(TimeSet::from_range(1, 2));
        a.latest = 2;
        let sym = a.intern("db");
        let db = a.push_node(
            root,
            ANode {
                kind: AKind::Element(sym),
                parent: None,
                children: Vec::new(),
                attrs: Vec::new(),
                time: Some(TimeSet::from_range(1, 9)),
                key: None,
                class: NodeClass::Keyed,
            },
        );
        let _ = db;
        assert!(a.check_invariants().is_err());
    }

    #[test]
    fn stats_counts_kinds() {
        let mut a = Archive::new(spec());
        let root = a.root();
        let sym = a.intern("db");
        let db = a.push_node(
            root,
            ANode {
                kind: AKind::Element(sym),
                parent: None,
                children: Vec::new(),
                attrs: Vec::new(),
                time: Some(TimeSet::from_version(1)),
                key: None,
                class: NodeClass::Keyed,
            },
        );
        a.push_node(
            db,
            ANode {
                kind: AKind::Text("x".into()),
                parent: None,
                children: Vec::new(),
                attrs: Vec::new(),
                time: None,
                key: None,
                class: NodeClass::BeyondFrontier,
            },
        );
        let s = a.stats();
        assert_eq!(s.elements, 2); // root + db
        assert_eq!(s.texts, 1);
        assert_eq!(s.explicit_times, 2); // root + db
    }
}
