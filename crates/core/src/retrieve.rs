//! Version retrieval (§7.1): "a simple scan through the archive can
//! retrieve any version" — whenever a timestamp is encountered, its content
//! is emitted iff the requested version number lies in the timestamp.

use xarch_xml::{Document, NodeId};

use crate::archive::{AKind, ANodeId, Archive};

impl Archive {
    /// True if version `v` has been archived (it may still be an *empty*
    /// version).
    pub fn has_version(&self, v: u32) -> bool {
        v >= 1 && v <= self.latest()
    }

    /// Reconstructs version `v` with a single scan. Returns `None` when `v`
    /// was never archived *or* when the database was empty at `v` (use
    /// [`Archive::has_version`] to distinguish).
    pub fn retrieve(&self, v: u32) -> Option<Document> {
        if !self.has_version(v) {
            return None;
        }
        let root = self.root();
        // Find the visible element child of the synthetic root — the
        // document root of version v.
        let doc_root = self.children(root).iter().copied().find(|&c| {
            matches!(self.node(c).kind, AKind::Element(_)) && self.visible(c, v)
        })?;
        let tag = self.tag_name(doc_root).expect("element").to_owned();
        let mut doc = Document::new(&tag);
        let did = doc.root();
        self.copy_attrs(doc_root, &mut doc, did);
        self.emit_children(doc_root, v, &mut doc, did);
        Some(doc)
    }

    /// Visibility of a node at version `v` given that its parent is
    /// visible: explicit timestamp decides, otherwise inherited (= true).
    fn visible(&self, id: ANodeId, v: u32) -> bool {
        self.node(id).time.as_ref().map_or(true, |t| t.contains(v))
    }

    fn copy_attrs(&self, id: ANodeId, doc: &mut Document, did: NodeId) {
        let attrs: Vec<(String, String)> = self
            .node(id)
            .attrs
            .iter()
            .map(|(s, v)| (self.syms().resolve(*s).to_owned(), v.clone()))
            .collect();
        for (n, v) in attrs {
            doc.set_attr(did, &n, &v);
        }
    }

    fn emit_children(&self, id: ANodeId, v: u32, doc: &mut Document, did: NodeId) {
        for &c in self.children(id) {
            if !self.visible(c, v) {
                continue;
            }
            match &self.node(c).kind {
                AKind::Stamp => {
                    // transparent: emit the alternative's content in place
                    self.emit_children(c, v, doc, did);
                }
                AKind::Element(s) => {
                    let tag = self.syms().resolve(*s).to_owned();
                    let e = doc.add_element(did, &tag);
                    self.copy_attrs(c, doc, e);
                    self.emit_children(c, v, doc, e);
                }
                AKind::Text(t) => {
                    let t = t.clone();
                    doc.add_text(did, &t);
                }
            }
        }
    }

    /// Number of archive nodes touched by a full retrieval scan — the cost
    /// the timestamp trees of §7.1 reduce.
    pub fn scan_cost(&self) -> usize {
        self.len()
    }
}
