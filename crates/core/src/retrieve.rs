//! Version retrieval (§7.1): "a simple scan through the archive can
//! retrieve any version" — whenever a timestamp is encountered, its content
//! is emitted iff the requested version number lies in the timestamp.
//!
//! Two forms are provided: [`Archive::retrieve`] materializes the version
//! as a [`Document`], and [`Archive::retrieve_into`] streams the visible
//! nodes directly into an [`io::Write`] sink as compact XML — the same
//! single scan, but with O(depth) memory instead of a full tree.

use std::io::{self, Write};

use xarch_xml::escape::{escape_attr, escape_text};
use xarch_xml::{Document, NodeId};

use crate::archive::{AKind, ANodeId, Archive};

impl Archive {
    /// True if version `v` has been archived (it may still be an *empty*
    /// version).
    pub fn has_version(&self, v: u32) -> bool {
        v >= 1 && v <= self.latest()
    }

    /// Reconstructs version `v` with a single scan. Returns `None` when `v`
    /// was never archived *or* when the database was empty at `v` (use
    /// [`Archive::has_version`] to distinguish).
    pub fn retrieve(&self, v: u32) -> Option<Document> {
        if !self.has_version(v) {
            return None;
        }
        let root = self.root();
        // Find the visible element child of the synthetic root — the
        // document root of version v.
        let doc_root = self
            .children(root)
            .iter()
            .copied()
            .find(|&c| matches!(self.node(c).kind, AKind::Element(_)) && self.visible(c, v))?;
        let tag = self.tag_name(doc_root).expect("element").to_owned();
        let mut doc = Document::new(&tag);
        let did = doc.root();
        self.copy_attrs(doc_root, &mut doc, did);
        self.emit_children(doc_root, v, &mut doc, did);
        Some(doc)
    }

    /// Visibility of a node at version `v` given that its parent is
    /// visible: explicit timestamp decides, otherwise inherited (= true).
    pub(crate) fn visible(&self, id: ANodeId, v: u32) -> bool {
        self.node(id).time.as_ref().is_none_or(|t| t.contains(v))
    }

    fn copy_attrs(&self, id: ANodeId, doc: &mut Document, did: NodeId) {
        let attrs: Vec<(String, String)> = self
            .node(id)
            .attrs
            .iter()
            .map(|(s, v)| (self.syms().resolve(*s).to_owned(), v.clone()))
            .collect();
        for (n, v) in attrs {
            doc.set_attr(did, &n, &v);
        }
    }

    fn emit_children(&self, id: ANodeId, v: u32, doc: &mut Document, did: NodeId) {
        for &c in self.children(id) {
            if !self.visible(c, v) {
                continue;
            }
            match &self.node(c).kind {
                AKind::Stamp => {
                    // transparent: emit the alternative's content in place
                    self.emit_children(c, v, doc, did);
                }
                AKind::Element(s) => {
                    let tag = self.syms().resolve(*s).to_owned();
                    let e = doc.add_element(did, &tag);
                    self.copy_attrs(c, doc, e);
                    self.emit_children(c, v, doc, e);
                }
                AKind::Text(t) => {
                    let t = t.clone();
                    doc.add_text(did, &t);
                }
            }
        }
    }

    /// Materializes the subtree rooted at element `id` as it existed at
    /// version `v` — the partial-retrieval walk behind `Archive::as_of`.
    /// Returns `None` when `id` is not an element or does not exist at
    /// `v`; cost is proportional to the visible subtree, never the
    /// archive.
    pub fn subtree_at(&self, id: ANodeId, v: u32) -> Option<Document> {
        if !self.has_version(v) || !self.exists_at(id, v) {
            return None;
        }
        let tag = self.tag_name(id)?.to_owned();
        let mut doc = Document::new(&tag);
        let did = doc.root();
        self.copy_attrs(id, &mut doc, did);
        self.emit_children(id, v, &mut doc, did);
        Some(doc)
    }

    /// Streaming retrieval: serializes version `v` directly into `out` as
    /// compact XML without materializing a [`Document`]. Returns `true`
    /// iff a document was written — `false` mirrors the `None` cases of
    /// [`Archive::retrieve`] (never archived, or empty at `v`).
    pub fn retrieve_into<W: Write + ?Sized>(&self, v: u32, out: &mut W) -> io::Result<bool> {
        if !self.has_version(v) {
            return Ok(false);
        }
        let root = self.root();
        let Some(doc_root) = self
            .children(root)
            .iter()
            .copied()
            .find(|&c| matches!(self.node(c).kind, AKind::Element(_)) && self.visible(c, v))
        else {
            return Ok(false);
        };
        self.write_visible(doc_root, v, out)?;
        Ok(true)
    }

    /// Writes one visible archive subtree (stamps transparent) as compact
    /// XML. The caller has established that `id` is visible at `v`.
    fn write_visible<W: Write + ?Sized>(&self, id: ANodeId, v: u32, out: &mut W) -> io::Result<()> {
        match &self.node(id).kind {
            AKind::Text(t) => write!(out, "{}", escape_text(t)),
            AKind::Stamp => self.write_visible_children(id, v, out),
            AKind::Element(s) => {
                let tag = self.syms().resolve(*s);
                write!(out, "<{tag}")?;
                for (a, val) in &self.node(id).attrs {
                    write!(out, " {}=\"{}\"", self.syms().resolve(*a), escape_attr(val))?;
                }
                if self.has_visible_content(id, v) {
                    write!(out, ">")?;
                    self.write_visible_children(id, v, out)?;
                    write!(out, "</{tag}>")
                } else {
                    write!(out, "/>")
                }
            }
        }
    }

    /// Writes the visible children of `id` (used by the chunked backend to
    /// splice chunk contents under one document root).
    pub(crate) fn write_visible_children<W: Write + ?Sized>(
        &self,
        id: ANodeId,
        v: u32,
        out: &mut W,
    ) -> io::Result<()> {
        for &c in self.children(id) {
            if self.visible(c, v) {
                self.write_visible(c, v, out)?;
            }
        }
        Ok(())
    }

    /// True when the element would serialize with content at `v` — decides
    /// `<tag/>` vs `<tag></tag>`, looking through transparent stamps.
    pub(crate) fn has_visible_content(&self, id: ANodeId, v: u32) -> bool {
        self.children(id).iter().any(|&c| {
            self.visible(c, v)
                && match self.node(c).kind {
                    AKind::Stamp => self.has_visible_content(c, v),
                    _ => true,
                }
        })
    }

    /// Number of archive nodes touched by a full retrieval scan — the cost
    /// the timestamp trees of §7.1 reduce.
    pub fn scan_cost(&self) -> usize {
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use xarch_keys::KeySpec;
    use xarch_xml::parse;

    use crate::archive::Archive;
    use crate::equiv::equiv_modulo_key_order;

    #[test]
    fn retrieve_into_matches_retrieve() {
        let spec =
            KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))\n(/db/rec, (val, {}))").unwrap();
        let mut a = Archive::new(spec.clone());
        for src in [
            "<db><rec><id>1</id><val>x</val></rec></db>",
            "<db><rec><id>1</id><val>y</val></rec><rec><id>2</id><val/></rec></db>",
        ] {
            a.add_version(&parse(src).unwrap()).unwrap();
        }
        for v in 1..=2 {
            let doc = a.retrieve(v).unwrap();
            let mut bytes = Vec::new();
            assert!(a.retrieve_into(v, &mut bytes).unwrap());
            let reparsed = parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
            assert!(
                equiv_modulo_key_order(&reparsed, &doc, &spec),
                "streamed v{v} diverged: {}",
                String::from_utf8_lossy(&bytes)
            );
        }
    }

    #[test]
    fn retrieve_into_reports_empty_and_missing_versions() {
        let spec = KeySpec::parse("(/, (db, {}))").unwrap();
        let mut a = Archive::new(spec);
        a.add_version(&parse("<db/>").unwrap()).unwrap();
        a.add_empty_version();
        let mut bytes = Vec::new();
        assert!(a.retrieve_into(1, &mut bytes).unwrap());
        assert_eq!(bytes, b"<db/>");
        // archived but empty: written nothing, distinguishable by has_version
        let mut bytes = Vec::new();
        assert!(!a.retrieve_into(2, &mut bytes).unwrap());
        assert!(bytes.is_empty());
        assert!(a.has_version(2));
        // never archived
        assert!(!a.retrieve_into(3, &mut bytes).unwrap());
        assert!(!a.has_version(3));
    }

    #[test]
    fn escaping_survives_streaming() {
        let spec = KeySpec::parse("(/, (db, {}))").unwrap();
        let mut a = Archive::new(spec);
        let mut doc = xarch_xml::Document::new("db");
        doc.set_attr(doc.root(), "k", "a\"b<c");
        doc.add_text(doc.root(), "x < y & z");
        a.add_version(&doc).unwrap();
        let mut bytes = Vec::new();
        assert!(a.retrieve_into(1, &mut bytes).unwrap());
        let reparsed = parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
        assert_eq!(reparsed.attr(reparsed.root(), "k"), Some("a\"b<c"));
        assert_eq!(reparsed.text_content(reparsed.root()), "x < y & z");
    }
}
