//! The XML representation of archives (Fig 5) and its inverse.
//!
//! "Another interesting aspect of our approach is that our archive can be
//! easily represented as yet another XML document" (§1). A node whose
//! timestamp differs from its parent's is wrapped in a `<T t="...">`
//! element (assumed to live in a separate namespace); stamp nodes beneath
//! frontier nodes render as `<T>` elements directly. [`from_xml`] parses
//! such a document back into an [`Archive`], re-annotating keys — so
//! archives can be stored, exchanged, compressed (with the XMill-style
//! compressor of `xarch-compress`) and queried with ordinary XML tools.

use std::collections::HashMap;
use std::fmt;

use xarch_keys::{KeySpec, NodeClass};
use xarch_xml::writer::{to_compact_string, to_pretty_string};
use xarch_xml::{Document, NodeId, NodeKind};

use crate::archive::{AKind, ANode, ANodeId, Archive};
use crate::timeset::TimeSet;

/// The timestamp element tag (`<T t="...">`).
pub const STAMP_TAG: &str = "T";
/// The timestamp attribute name.
pub const STAMP_ATTR: &str = "t";

/// Errors raised while reading an archive from XML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlRepError(pub String);

impl fmt::Display for XmlRepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "archive XML error: {}", self.0)
    }
}

impl std::error::Error for XmlRepError {}

impl Archive {
    /// Renders the archive as the Fig-5 XML document:
    /// `<T t="1-4"><root> ... </root></T>`.
    pub fn to_xml(&self) -> Document {
        let mut doc = Document::new(STAMP_TAG);
        let t = self
            .node(self.root())
            .time
            .as_ref()
            .expect("root carries a timestamp");
        let root_did = doc.root();
        doc.set_attr(root_did, STAMP_ATTR, &t.to_string());
        let el = doc.add_element(root_did, "root");
        self.emit_attrs(self.root(), &mut doc, el);
        self.emit_xml_children(self.root(), &mut doc, el);
        doc
    }

    /// The archive serialized as line-oriented XML text — the form whose
    /// byte length the paper's `archive` size series reports and whose
    /// compression the `xmill(archive)` series measures.
    pub fn to_xml_pretty(&self) -> String {
        to_pretty_string(&self.to_xml(), 0)
    }

    /// Compact single-line serialization.
    pub fn to_xml_compact(&self) -> String {
        to_compact_string(&self.to_xml())
    }

    /// Size of the archive in bytes (pretty XML form).
    pub fn size_bytes(&self) -> usize {
        self.to_xml_pretty().len()
    }

    /// Renders the archive *as it stood* after version `v` merged: the
    /// Fig-5 document restricted to nodes whose effective timestamp
    /// intersects `1..=v`, every timestamp clamped to that window.
    ///
    /// The rendering is canonical: a node is wrapped in `<T t="...">` iff
    /// its clamped timestamp differs from its parent's clamped effective
    /// time (stamp nodes always carry theirs). Because append-only merges
    /// never change which versions ≤ `v` a node belongs to, the rendering
    /// — and therefore [`Archive::size_bytes_at`] — is a pure function of
    /// the first `v` versions: pinned snapshots report it unchanged while
    /// the live archive keeps growing.
    pub fn to_xml_at(&self, v: u32) -> Document {
        let mut doc = Document::new(STAMP_TAG);
        let t = self
            .node(self.root())
            .time
            .as_ref()
            .expect("root carries a timestamp")
            .clamp_range(1, v);
        let root_did = doc.root();
        doc.set_attr(root_did, STAMP_ATTR, &t.to_string());
        let el = doc.add_element(root_did, "root");
        self.emit_attrs(self.root(), &mut doc, el);
        self.emit_xml_children_at(self.root(), &t, v, &mut doc, el);
        doc
    }

    /// Serialized size in bytes (pretty XML form) of the archive as it
    /// stood after version `v` merged — see [`Archive::to_xml_at`].
    pub fn size_bytes_at(&self, v: u32) -> usize {
        to_pretty_string(&self.to_xml_at(v), 0).len()
    }

    fn emit_attrs(&self, id: ANodeId, doc: &mut Document, did: NodeId) {
        let attrs: Vec<(String, String)> = self
            .node(id)
            .attrs
            .iter()
            .map(|(s, v)| (self.syms().resolve(*s).to_owned(), v.clone()))
            .collect();
        for (n, v) in attrs {
            doc.set_attr(did, &n, &v);
        }
    }

    fn emit_xml_children(&self, id: ANodeId, doc: &mut Document, did: NodeId) {
        for &c in self.children(id) {
            let n = self.node(c);
            match &n.kind {
                AKind::Stamp => {
                    let t_el = doc.add_element(did, STAMP_TAG);
                    let t = n.time.as_ref().expect("stamp time");
                    doc.set_attr(t_el, STAMP_ATTR, &t.to_string());
                    self.emit_xml_children(c, doc, t_el);
                }
                AKind::Element(s) => {
                    let tag = self.syms().resolve(*s).to_owned();
                    let parent = match &n.time {
                        Some(t) => {
                            let w = doc.add_element(did, STAMP_TAG);
                            doc.set_attr(w, STAMP_ATTR, &t.to_string());
                            w
                        }
                        None => did,
                    };
                    let el = doc.add_element(parent, &tag);
                    self.emit_attrs(c, doc, el);
                    self.emit_xml_children(c, doc, el);
                }
                AKind::Text(txt) => {
                    let txt = txt.clone();
                    match &n.time {
                        Some(t) => {
                            let w = doc.add_element(did, STAMP_TAG);
                            doc.set_attr(w, STAMP_ATTR, &t.to_string());
                            doc.add_text(w, &txt);
                        }
                        None => {
                            doc.add_text(did, &txt);
                        }
                    }
                }
            }
        }
    }

    /// The clamped counterpart of [`Archive::emit_xml_children`], used by
    /// [`Archive::to_xml_at`]: children invisible at every version ≤ `v`
    /// are skipped, and a `<T>` wrapper is emitted iff the child's clamped
    /// timestamp differs from `parent_eff` (the parent's clamped effective
    /// time).
    fn emit_xml_children_at(
        &self,
        id: ANodeId,
        parent_eff: &TimeSet,
        v: u32,
        doc: &mut Document,
        did: NodeId,
    ) {
        for &c in self.children(id) {
            let n = self.node(c);
            let clamped = match &n.time {
                Some(t) => t.clamp_range(1, v),
                None => parent_eff.clone(),
            };
            if clamped.is_empty() {
                continue;
            }
            match &n.kind {
                AKind::Stamp => {
                    // Canonical stamp elision: if clamping leaves this as
                    // the sole alternative spanning the parent's whole
                    // clamped lifetime, a serial replay of `1..=v` would
                    // have stored its contents unwrapped — render them so
                    if clamped == *parent_eff {
                        self.emit_xml_children_at(c, parent_eff, v, doc, did);
                    } else {
                        let t_el = doc.add_element(did, STAMP_TAG);
                        doc.set_attr(t_el, STAMP_ATTR, &clamped.to_string());
                        self.emit_xml_children_at(c, &clamped, v, doc, t_el);
                    }
                }
                AKind::Element(s) => {
                    let tag = self.syms().resolve(*s).to_owned();
                    let parent = if n.time.is_some() && clamped != *parent_eff {
                        let w = doc.add_element(did, STAMP_TAG);
                        doc.set_attr(w, STAMP_ATTR, &clamped.to_string());
                        w
                    } else {
                        did
                    };
                    let el = doc.add_element(parent, &tag);
                    self.emit_attrs(c, doc, el);
                    self.emit_xml_children_at(c, &clamped, v, doc, el);
                }
                AKind::Text(txt) => {
                    let txt = txt.clone();
                    if n.time.is_some() && clamped != *parent_eff {
                        let w = doc.add_element(did, STAMP_TAG);
                        doc.set_attr(w, STAMP_ATTR, &clamped.to_string());
                        doc.add_text(w, &txt);
                    } else {
                        doc.add_text(did, &txt);
                    }
                }
            }
        }
    }
}

/// Parses a Fig-5 archive document back into an [`Archive`] governed by
/// `spec`. Key values and node classes are re-derived during the walk.
pub fn from_xml(doc: &Document, spec: &KeySpec) -> Result<Archive, XmlRepError> {
    let root_did = doc.root();
    if doc.tag_name(root_did) != STAMP_TAG {
        return Err(XmlRepError(format!(
            "expected <{STAMP_TAG}> at top level, found <{}>",
            doc.tag_name(root_did)
        )));
    }
    let t = parse_time(doc, root_did)?;
    let latest = t.max().unwrap_or(0);
    let inner: Vec<NodeId> = doc
        .children(root_did)
        .iter()
        .copied()
        .filter(|&c| matches!(doc.node(c).kind, NodeKind::Element(_)))
        .collect();
    let [root_el] = inner.as_slice() else {
        return Err(XmlRepError(
            "top-level <T> must hold exactly one element".into(),
        ));
    };
    if doc.tag_name(*root_el) != "root" {
        return Err(XmlRepError(format!(
            "expected <root>, found <{}>",
            doc.tag_name(*root_el)
        )));
    }
    let mut a = Archive::new(spec.clone());
    a.set_latest(latest);
    let root_aid = a.root();
    a.node_mut(root_aid).time = Some(t);
    // copy attrs of <root> if any
    copy_attrs(doc, *root_el, &mut a, root_aid);

    // Prepare keyed-path lookup for re-annotation.
    let mut keyed: HashMap<Vec<String>, usize> = HashMap::new();
    for (i, k) in spec.keys().iter().enumerate() {
        keyed.insert(k.keyed_path().steps().to_vec(), i);
    }
    let frontier: Vec<Vec<String>> = spec
        .frontier_paths()
        .iter()
        .map(|p| p.steps().to_vec())
        .collect();
    let mut labels: Vec<String> = Vec::new();
    for &c in doc.children(*root_el) {
        build(
            doc,
            c,
            &mut a,
            root_aid,
            spec,
            &keyed,
            &frontier,
            &mut labels,
            false,
        )?;
    }
    Ok(a)
}

fn parse_time(doc: &Document, el: NodeId) -> Result<TimeSet, XmlRepError> {
    let raw = doc
        .attr(el, STAMP_ATTR)
        .ok_or_else(|| XmlRepError("<T> without t attribute".into()))?;
    TimeSet::parse(raw).map_err(|e| XmlRepError(e.to_string()))
}

fn copy_attrs(doc: &Document, did: NodeId, a: &mut Archive, aid: ANodeId) {
    let attrs: Vec<(String, String)> = doc
        .attrs(did)
        .iter()
        .map(|(s, v)| (doc.syms().resolve(*s).to_owned(), v.clone()))
        .collect();
    for (n, v) in attrs {
        let sym = a.intern(&n);
        a.node_mut(aid).attrs.push((sym, v));
    }
}

/// Recursively translates a document node into the archive, tracking the
/// label path (stamps are transparent) and annotating keys.
#[allow(clippy::too_many_arguments)]
fn build(
    doc: &Document,
    did: NodeId,
    a: &mut Archive,
    parent: ANodeId,
    spec: &KeySpec,
    keyed: &HashMap<Vec<String>, usize>,
    frontier: &[Vec<String>],
    labels: &mut Vec<String>,
    beyond: bool,
) -> Result<(), XmlRepError> {
    match &doc.node(did).kind {
        NodeKind::Text(txt) => {
            a.push_node(
                parent,
                ANode {
                    kind: AKind::Text(txt.clone()),
                    parent: None,
                    children: Vec::new(),
                    attrs: Vec::new(),
                    time: None,
                    key: None,
                    class: if beyond {
                        NodeClass::BeyondFrontier
                    } else {
                        NodeClass::Text
                    },
                },
            );
            Ok(())
        }
        NodeKind::Element(s) if doc.syms().resolve(*s) == STAMP_TAG => {
            let t = parse_time(doc, did)?;
            // A <T> wrapping a single element above the frontier is an
            // explicit timestamp on that element; a <T> beneath a frontier
            // node is a stamp alternative. We distinguish by `beyond`.
            if beyond {
                let stamp = a.push_node(
                    parent,
                    ANode {
                        kind: AKind::Stamp,
                        parent: None,
                        children: Vec::new(),
                        attrs: Vec::new(),
                        time: Some(t),
                        key: None,
                        class: NodeClass::BeyondFrontier,
                    },
                );
                for &c in doc.children(did) {
                    build(doc, c, a, stamp, spec, keyed, frontier, labels, true)?;
                }
                Ok(())
            } else {
                // unwrap: children get the explicit time
                for &c in doc.children(did) {
                    let before = a.children(parent).len();
                    build(doc, c, a, parent, spec, keyed, frontier, labels, false)?;
                    let new_children: Vec<ANodeId> = a.children(parent)[before..].to_vec();
                    for nc in new_children {
                        a.node_mut(nc).time = Some(t.clone());
                    }
                }
                Ok(())
            }
        }
        NodeKind::Element(s) => {
            let tag = doc.syms().resolve(*s).to_owned();
            labels.push(tag.clone());
            let (class, key) = if beyond {
                (NodeClass::BeyondFrontier, None)
            } else if let Some(&ki) = keyed.get(labels.as_slice()) {
                let k = &spec.keys()[ki];
                let kv = extract_key(a_doc(doc), did, &k.key_paths)
                    .map_err(|m| XmlRepError(format!("at /{}: {m}", labels.join("/"))))?;
                let is_frontier = frontier.iter().any(|f| f == labels);
                (
                    if is_frontier {
                        NodeClass::Frontier
                    } else {
                        NodeClass::Keyed
                    },
                    Some(kv),
                )
            } else {
                (NodeClass::Unkeyed, None)
            };
            let sym = a.intern(&tag);
            let aid = a.push_node(
                parent,
                ANode {
                    kind: AKind::Element(sym),
                    parent: None,
                    children: Vec::new(),
                    attrs: Vec::new(),
                    time: None,
                    key,
                    class,
                },
            );
            copy_attrs(doc, did, a, aid);
            let child_beyond = beyond || class == NodeClass::Frontier;
            for &c in doc.children(did) {
                build(doc, c, a, aid, spec, keyed, frontier, labels, child_beyond)?;
            }
            labels.pop();
            Ok(())
        }
    }
}

fn a_doc(doc: &Document) -> &Document {
    doc
}

/// Extracts a key value from a *document* node, resolving key paths through
/// element children (stamps must not occur inside key values — key values
/// are immutable while the element exists).
fn extract_key(
    doc: &Document,
    id: NodeId,
    key_paths: &[xarch_xml::Path],
) -> Result<xarch_keys::KeyValue, String> {
    use xarch_keys::KeyPart;
    use xarch_xml::canon::canonical;
    use xarch_xml::escape::escape_attr;

    let fper = xarch_keys::Fingerprinter::default();
    let mut parts = Vec::with_capacity(key_paths.len());
    for p in key_paths {
        let canon = if p.is_empty() {
            canonical(doc, id)
        } else {
            let mut cur = id;
            let steps = p.steps();
            let mut found_attr: Option<String> = None;
            for (i, step) in steps.iter().enumerate() {
                // Key-path nodes are never <T>-wrapped: key values are
                // constant while their element exists, so they always
                // inherit. Resolve among *direct* element children only.
                let matches: Vec<NodeId> = doc.child_elements(cur, step).collect();
                match matches.len() {
                    1 => cur = matches[0],
                    0 if i == steps.len() - 1 => {
                        if let Some(v) = doc.attr(cur, step) {
                            found_attr = Some(format!("@{}=\"{}\"", step, escape_attr(v)));
                            break;
                        }
                        return Err(format!("key path `{p}`: step `{step}` not found"));
                    }
                    0 => return Err(format!("key path `{p}`: step `{step}` not found")),
                    n => return Err(format!("key path `{p}`: step `{step}` matched {n} nodes")),
                }
            }
            found_attr.unwrap_or_else(|| canonical(doc, cur))
        };
        let fp = fper.fp(&canon);
        parts.push(KeyPart {
            path: p.to_string(),
            canon,
            fp,
        });
    }
    parts.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(xarch_keys::KeyValue { parts })
}
