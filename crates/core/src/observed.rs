//! [`ObservedStore`]: the observability wrapper every backend reports
//! through.
//!
//! Backends own their *structural* counters (journal fsyncs, paged I/O,
//! index probes); what they cannot see is the query and ingest surface as
//! the caller experiences it. `ObservedStore` wraps any
//! [`VersionStore`] as the outermost layer and times every query kind and
//! ingest call into per-operation latency histograms registered under the
//! canonical `query.*` / `ingest.*` names — recording is a timer-guard
//! drop onto lock-free atomics, so wrapping adds no lock acquisition to
//! any read or write path.

use std::io::Write;
use std::ops::RangeInclusive;

use xarch_keys::KeySpec;
use xarch_obs::{Counter, Histogram, Obs};
use xarch_xml::Document;

use crate::history::KeyQuery;
use crate::query::{ElementHistory, RangeEntry, VersionDelta};
use crate::store::{StoreError, StoreReader, StoreStats, VersionStore};
use crate::timeset::TimeSet;

/// The canonical `query.*` / `ingest.*` metric handles an
/// [`ObservedStore`] records into.
#[derive(Clone, Debug)]
pub struct QueryMetrics {
    /// `query.retrieve.duration` — full-version retrieval latency (µs).
    pub retrieve: Histogram,
    /// `query.as_of.duration` — partial as-of retrieval latency (µs).
    pub as_of: Histogram,
    /// `query.history.duration` — temporal history latency (µs).
    pub history: Histogram,
    /// `query.history_values.duration` — value-history latency (µs).
    pub history_values: Histogram,
    /// `query.range.duration` — range scan latency (µs).
    pub range: Histogram,
    /// `query.diff.duration` — version diff latency (µs).
    pub diff: Histogram,
    /// `ingest.versions` — versions committed (plain or batched).
    pub ingest_versions: Counter,
    /// `ingest.batches` — `add_versions` batches committed.
    pub ingest_batches: Counter,
    /// `ingest.merge_duration` — single-version merge+commit latency (µs).
    pub merge_duration: Histogram,
    /// `ingest.batch_merge_duration` — whole-batch merge+commit latency
    /// (µs), one sample per batch on whichever backend ran it.
    pub batch_merge_duration: Histogram,
}

impl QueryMetrics {
    /// Handles registered under the canonical query/ingest metric names.
    pub fn registered(obs: &Obs) -> Self {
        let r = obs.registry();
        Self {
            retrieve: r.histogram("query.retrieve.duration", "micros", "retrieve latency"),
            as_of: r.histogram("query.as_of.duration", "micros", "as-of retrieval latency"),
            history: r.histogram("query.history.duration", "micros", "history query latency"),
            history_values: r.histogram(
                "query.history_values.duration",
                "micros",
                "value-history query latency",
            ),
            range: r.histogram("query.range.duration", "micros", "range scan latency"),
            diff: r.histogram("query.diff.duration", "micros", "version diff latency"),
            ingest_versions: r.counter(
                "ingest.versions",
                "versions",
                "versions committed through the store",
            ),
            ingest_batches: r.counter(
                "ingest.batches",
                "batches",
                "bulk-ingest batches committed through the store",
            ),
            merge_duration: r.histogram(
                "ingest.merge_duration",
                "micros",
                "single-version merge and commit latency",
            ),
            batch_merge_duration: r.histogram(
                "ingest.batch_merge_duration",
                "micros",
                "whole-batch merge and commit latency",
            ),
        }
    }
}

/// A [`VersionStore`] wrapper that times every query kind and ingest call
/// into the canonical latency histograms. Built by
/// `ArchiveBuilder::with_observability(..)` as the outermost layer.
pub struct ObservedStore {
    inner: Box<dyn VersionStore>,
    metrics: QueryMetrics,
    /// True for handle-side replicas made by [`VersionStore::fork`]: the
    /// replica shares the original's metric handles so queries served
    /// from it record into the same `query.*` histograms (each query runs
    /// on exactly one instance), but the writer applies every merge to
    /// *both* instances — so a replica must not record `ingest.*`, or
    /// every commit would count twice.
    replica: bool,
}

impl std::fmt::Debug for ObservedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObservedStore")
            .field("latest", &self.inner.latest())
            .finish_non_exhaustive()
    }
}

impl ObservedStore {
    /// Wraps `inner`, registering the canonical query/ingest metrics in
    /// `obs`'s registry.
    pub fn new(inner: Box<dyn VersionStore>, obs: &Obs) -> Self {
        Self {
            inner,
            metrics: QueryMetrics::registered(obs),
            replica: false,
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &dyn VersionStore {
        self.inner.as_ref()
    }

    /// The metric handles this wrapper records into.
    pub fn metrics(&self) -> &QueryMetrics {
        &self.metrics
    }
}

impl StoreReader for ObservedStore {
    fn spec(&self) -> &KeySpec {
        self.inner.spec()
    }

    fn latest(&self) -> u32 {
        self.inner.latest()
    }

    fn has_version(&self, v: u32) -> bool {
        self.inner.has_version(v)
    }

    fn retrieve(&self, v: u32) -> Result<Option<Document>, StoreError> {
        let _t = self.metrics.retrieve.start_timer();
        self.inner.retrieve(v)
    }

    fn retrieve_into(&self, v: u32, out: &mut dyn Write) -> Result<bool, StoreError> {
        let _t = self.metrics.retrieve.start_timer();
        self.inner.retrieve_into(v, out)
    }

    fn history(&self, steps: &[KeyQuery]) -> Result<Option<TimeSet>, StoreError> {
        let _t = self.metrics.history.start_timer();
        self.inner.history(steps)
    }

    fn stats(&self) -> Result<StoreStats, StoreError> {
        self.inner.stats()
    }

    fn stats_at(&self, v: u32) -> Result<StoreStats, StoreError> {
        self.inner.stats_at(v)
    }

    fn as_of(&self, steps: &[KeyQuery], v: u32) -> Result<Option<Document>, StoreError> {
        let _t = self.metrics.as_of.start_timer();
        self.inner.as_of(steps, v)
    }

    fn history_values(&self, steps: &[KeyQuery]) -> Result<Option<ElementHistory>, StoreError> {
        let _t = self.metrics.history_values.start_timer();
        self.inner.history_values(steps)
    }

    fn range(
        &self,
        prefix: &[KeyQuery],
        versions: RangeInclusive<u32>,
    ) -> Result<Vec<RangeEntry>, StoreError> {
        let _t = self.metrics.range.start_timer();
        self.inner.range(prefix, versions)
    }

    fn diff(&self, steps: &[KeyQuery], v1: u32, v2: u32) -> Result<VersionDelta, StoreError> {
        let _t = self.metrics.diff.start_timer();
        self.inner.diff(steps, v1, v2)
    }
}

impl VersionStore for ObservedStore {
    fn add_version(&mut self, doc: &Document) -> Result<u32, StoreError> {
        if self.replica {
            return self.inner.add_version(doc);
        }
        let _t = self.metrics.merge_duration.start_timer();
        let v = self.inner.add_version(doc)?;
        self.metrics.ingest_versions.inc();
        Ok(v)
    }

    fn add_empty_version(&mut self) -> Result<u32, StoreError> {
        if self.replica {
            return self.inner.add_empty_version();
        }
        let _t = self.metrics.merge_duration.start_timer();
        let v = self.inner.add_empty_version()?;
        self.metrics.ingest_versions.inc();
        Ok(v)
    }

    fn add_versions(&mut self, docs: &[Document]) -> Result<Vec<u32>, StoreError> {
        if docs.is_empty() {
            return Ok(Vec::new());
        }
        if self.replica {
            return self.inner.add_versions(docs);
        }
        let _t = self.metrics.batch_merge_duration.start_timer();
        let assigned = self.inner.add_versions(docs)?;
        self.metrics.ingest_batches.inc();
        self.metrics.ingest_versions.add(assigned.len() as u64);
        Ok(assigned)
    }

    fn checkpoint_state(&self) -> Result<Option<Vec<u8>>, StoreError> {
        self.inner.checkpoint_state()
    }

    fn restore_checkpoint(&mut self, state: &[u8]) -> Result<bool, StoreError> {
        self.inner.restore_checkpoint(state)
    }

    fn fork(&self) -> Result<Box<dyn VersionStore>, StoreError> {
        Ok(Box::new(ObservedStore {
            inner: self.inner.fork()?,
            metrics: self.metrics.clone(),
            replica: true,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::Archive;

    fn spec() -> KeySpec {
        KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))").expect("valid spec")
    }

    fn doc(s: &str) -> Document {
        xarch_xml::parse(s).expect("valid xml")
    }

    fn observed(obs: &Obs) -> ObservedStore {
        ObservedStore::new(Box::new(Archive::new(spec())), obs)
    }

    #[test]
    fn observed_store_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<ObservedStore>();
        assert_send_sync::<QueryMetrics>();
    }

    #[test]
    fn queries_record_into_their_own_histograms() {
        let obs = Obs::disconnected();
        let mut s = observed(&obs);
        s.add_version(&doc("<db><rec><id>1</id></rec></db>"))
            .expect("merge");
        let q = [KeyQuery::new("db")];
        let _ = s.retrieve(1).expect("retrieve");
        let _ = s.history(&q).expect("history");
        let _ = s.as_of(&q, 1).expect("as_of");
        let _ = s.history_values(&q).expect("history_values");
        let _ = s.range(&[], 1..=1).expect("range");
        let _ = s.diff(&q, 1, 1).expect("diff");
        for name in [
            "query.retrieve.duration",
            "query.history.duration",
            "query.as_of.duration",
            "query.history_values.duration",
            "query.range.duration",
            "query.diff.duration",
        ] {
            let h = obs.registry().get_histogram(name).expect("registered");
            assert_eq!(h.count(), 1, "{name}");
        }
    }

    #[test]
    fn ingest_counts_versions_and_batches() {
        let obs = Obs::disconnected();
        let mut s = observed(&obs);
        s.add_version(&doc("<db><rec><id>1</id></rec></db>"))
            .expect("merge");
        s.add_versions(&[
            doc("<db><rec><id>1</id></rec></db>"),
            doc("<db><rec><id>2</id></rec></db>"),
        ])
        .expect("batch");
        assert_eq!(s.add_versions(&[]).expect("empty"), Vec::<u32>::new());
        let r = obs.registry();
        assert_eq!(r.get_counter("ingest.versions").expect("reg").get(), 3);
        assert_eq!(r.get_counter("ingest.batches").expect("reg").get(), 1);
        assert_eq!(
            r.get_histogram("ingest.batch_merge_duration")
                .expect("reg")
                .count(),
            1,
            "empty batches record nothing"
        );
    }

    #[test]
    fn forked_replica_records_queries_but_never_ingest() {
        let obs = Obs::disconnected();
        let mut s = observed(&obs);
        s.add_version(&doc("<db><rec><id>1</id></rec></db>"))
            .expect("merge");
        let mut replica = s.fork().expect("fork");
        // The shared handle applies every commit to both instances — the
        // replica's copy of the merge must not count a second time.
        replica
            .add_version(&doc("<db><rec><id>2</id></rec></db>"))
            .expect("replica merge");
        let _ = replica.retrieve(1).expect("replica read");
        let r = obs.registry();
        assert_eq!(r.get_counter("ingest.versions").expect("reg").get(), 1);
        assert_eq!(
            r.get_histogram("ingest.merge_duration")
                .expect("reg")
                .count(),
            1
        );
        // … but queries served from the replica land in the shared
        // query.* histograms like any other read.
        assert_eq!(
            r.get_histogram("query.retrieve.duration")
                .expect("reg")
                .count(),
            1
        );
    }

    #[test]
    fn failed_ingest_is_timed_but_not_counted() {
        let obs = Obs::disconnected();
        let mut s = observed(&obs);
        assert!(s.add_version(&doc("<wrong><x>1</x></wrong>")).is_err());
        let r = obs.registry();
        assert_eq!(r.get_counter("ingest.versions").expect("reg").get(), 0);
        assert_eq!(
            r.get_histogram("ingest.merge_duration")
                .expect("reg")
                .count(),
            1
        );
    }
}
