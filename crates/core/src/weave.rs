//! "Further compaction" beneath frontier nodes (§4.2, Fig 10).
//!
//! Instead of holding each distinct content of a frontier node as a whole
//! `<T>` alternative, the contents of successive versions are *woven*
//! SCCS-style: the child subtrees form a sequence, a minimal diff (on
//! canonical forms) aligns the previous version's children with the new
//! ones, and each child carries its own timestamp. Elements that persist
//! across versions are stored once — Fig 10's `d` and `e` — while the parts
//! that differ (`f` vs `g`) get disjoint timestamps.
//!
//! This module reuses the Myers diff of `xarch-diff`, treating each child
//! subtree's canonical form as one "line".

use xarch_keys::Annotations;
use xarch_xml::canon::canonical;
use xarch_xml::{Document, NodeId};

use crate::archive::{ANodeId, Archive};
use crate::merge::{canonical_anode, copy_subtree, terminate};
use crate::timeset::TimeSet;

/// Weaves the children of frontier version node `y` into the children of
/// frontier archive node `x`. `t_cur` is `time(x)` *including* the new
/// version `i`.
pub(crate) fn weave_frontier(
    a: &mut Archive,
    x: ANodeId,
    doc: &Document,
    ann: &Annotations,
    y: NodeId,
    t_cur: &TimeSet,
    i: u32,
) {
    let mut t_old = t_cur.clone();
    t_old.remove(i);
    // The reference sequence is the content at the most recent version in
    // which x existed before i (x may have been absent for a while).
    let prev = t_old.max();

    let old_children = a.children(x).to_vec();
    let live: Vec<bool> = old_children
        .iter()
        .map(|&c| match prev {
            Some(p) => a.node(c).time.as_ref().is_none_or(|t| t.contains(p)),
            None => false,
        })
        .collect();

    let x_canons: Vec<String> = old_children
        .iter()
        .zip(live.iter())
        .filter(|(_, &l)| l)
        .map(|(&c, _)| canonical_anode(a, c))
        .collect();
    let y_children = doc.children(y).to_vec();
    let y_canons: Vec<String> = y_children.iter().map(|&c| canonical(doc, c)).collect();

    let x_refs: Vec<&str> = x_canons.iter().map(|s| s.as_str()).collect();
    let y_refs: Vec<&str> = y_canons.iter().map(|s| s.as_str()).collect();
    let script = xarch_diff::diff_lines(&x_refs, &y_refs);

    // Rebuild the child list, interleaving kept, terminated and new nodes.
    let mut new_children: Vec<ANodeId> = Vec::with_capacity(old_children.len() + y_children.len());
    let mut live_idx = 0usize; // position among live children
    let mut y_pos = 0usize; // position in y_children
    let mut edits = script.edits.iter().peekable();

    let insert_ys = |a: &mut Archive, out: &mut Vec<ANodeId>, y_pos: &mut usize, count: usize| {
        for k in 0..count {
            let yc = y_children[*y_pos + k];
            let id = copy_subtree(a, doc, ann, yc, x);
            // copy_subtree appended id to x's children; we manage order
            // ourselves, so pop it back off.
            let popped = a.node_mut(x).children.pop();
            debug_assert_eq!(popped, Some(id));
            a.node_mut(id).time = Some(TimeSet::from_version(i));
            out.push(id);
        }
        *y_pos += count;
    };

    for (idx, &c) in old_children.iter().enumerate() {
        if !live[idx] {
            // dormant child keeps its place and timestamp
            new_children.push(c);
            continue;
        }
        // pure insertions land before this live position
        while let Some(e) = edits.peek() {
            if e.a_start == live_idx && e.a_len == 0 {
                let count = e.b_lines.len();
                insert_ys(a, &mut new_children, &mut y_pos, count);
                edits.next();
            } else {
                break;
            }
        }
        if let Some(e) = edits.peek() {
            if e.a_start <= live_idx && live_idx < e.a_start + e.a_len {
                // deleted at version i
                terminate(a, c, t_cur, i);
                new_children.push(c);
                if live_idx == e.a_start + e.a_len - 1 {
                    let count = e.b_lines.len();
                    insert_ys(a, &mut new_children, &mut y_pos, count);
                    edits.next();
                }
                live_idx += 1;
                continue;
            }
        }
        // matched: the child also exists at version i
        if let Some(t) = a.node_mut(c).time.as_mut() {
            t.insert(i);
        }
        new_children.push(c);
        live_idx += 1;
        y_pos += 1;
    }
    // trailing insertions
    for e in edits {
        debug_assert_eq!(e.a_len, 0, "only trailing inserts may remain");
        let count = e.b_lines.len();
        insert_ys(a, &mut new_children, &mut y_pos, count);
    }
    debug_assert_eq!(y_pos, y_children.len());
    a.node_mut(x).children = new_children;
}
