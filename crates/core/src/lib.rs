//! # xarch-core
//!
//! The primary contribution of *Archiving Scientific Data* (Buneman,
//! Khanna, Tajima, Tan; SIGMOD 2002 / TODS 2004): a **key-based, merging
//! archiver** for hierarchical data. All versions of a database live in one
//! tree; elements are identified across versions by their keys; timestamps
//! (compact interval sets) record when each element exists.
//!
//! * [`timeset`] — interval-set timestamps (`t="1-3,5,7-9"`),
//! * [`archive`] — the merged tree ([`Archive`]) with timestamp inheritance,
//! * [`merge`] — **Nested Merge** (§4.2), entered via
//!   [`Archive::add_version`],
//! * [`weave`] — "further compaction" beneath frontier nodes (Fig 10),
//! * [`retrieve`] — single-scan version retrieval (§7.1), materializing or
//!   streaming to any `io::Write` sink,
//! * [`store`] — the [`StoreReader`] / [`VersionStore`] trait pair: the
//!   shared-read query surface (all `&self`) and the mutators on top,
//!   implemented by every storage backend (in-memory, chunked,
//!   external-memory),
//! * [`history`] — temporal history of keyed elements (§7.2),
//! * [`query`] — the temporal query model: `as_of` / `history_values` /
//!   `range` / `diff` result types and the document-side navigation the
//!   whole-retrieve fallbacks share,
//! * [`changes`] — key-aware (semantically meaningful) change descriptions,
//! * [`xmlrep`] — the `<T t="...">` XML representation (Fig 5) and its
//!   inverse, making the archive "yet another XML document",
//! * [`chunk`] — hash-partitioned chunked archiving (§5's memory
//!   workaround),
//! * [`equiv`] — key-aware document equivalence used to state correctness,
//! * [`wire`] — the shared varint/string wire primitives (one byte-level
//!   grammar for event streams, checkpoint states, and durable block
//!   payloads — see `docs/FORMAT.md`),
//! * [`state`] — checkpoint state codecs behind
//!   [`VersionStore::checkpoint_state`] /
//!   [`VersionStore::restore_checkpoint`], the hooks the durable layer
//!   uses to make reopen time flat in history length.

#![warn(missing_docs)]

pub mod archive;
pub mod changes;
pub mod chunk;
pub mod equiv;
pub mod history;
pub mod merge;
pub mod observed;
pub mod query;
pub mod retrieve;
pub mod state;
pub mod store;
pub mod timeset;
pub mod weave;
pub mod wire;
pub mod xmlrep;

pub use archive::{AKind, ANode, ANodeId, Archive, ArchiveStats, Compaction, MergeError};
pub use changes::{describe_changes, Change, ChangeKind};
pub use chunk::ChunkedArchive;
pub use equiv::equiv_modulo_key_order;
pub use history::KeyQuery;
pub use observed::{ObservedStore, QueryMetrics};
pub use query::{ElementHistory, RangeEntry, VersionDelta};
pub use store::{StoreError, StoreReader, StoreStats, VersionStore};
pub use timeset::TimeSet;
