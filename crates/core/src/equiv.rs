//! Key-aware document equivalence.
//!
//! The archive "ignores the order among elements with keys" (§2): retrieval
//! may reorder keyed siblings relative to the original version. Two
//! documents are *equivalent modulo key order* when they are value-equal
//! after keyed siblings are aligned by key value. Beneath frontier nodes —
//! where order carries meaning — strict ordered value equality is required.
//!
//! Integration tests use this relation to state the archiver's correctness:
//! `retrieve(archive, i) ≡ version_i` for every archived version.

use std::cmp::Ordering;
use std::collections::HashMap;

use xarch_keys::{annotate, Annotations, KeySpec, KeyValue};
use xarch_xml::canon::canonical;
use xarch_xml::order::cmp_node_lists;
use xarch_xml::{Document, NodeId, NodeKind};

/// True when `a` and `b` represent the same database under `spec`,
/// tolerating reordering of keyed siblings.
pub fn equiv_modulo_key_order(a: &Document, b: &Document, spec: &KeySpec) -> bool {
    let (Ok(ann_a), Ok(ann_b)) = (annotate(a, spec), annotate(b, spec)) else {
        // If either document violates the keys, fall back to strict equality.
        return xarch_xml::value_equal(a, a.root(), b, b.root());
    };
    if a.tag_name(a.root()) != b.tag_name(b.root()) {
        return false;
    }
    equiv_nodes(a, a.root(), &ann_a, b, b.root(), &ann_b)
}

fn attrs_equal(a: &Document, x: NodeId, b: &Document, y: NodeId) -> bool {
    let mut xa: Vec<(&str, &str)> = a
        .attrs(x)
        .iter()
        .map(|(s, v)| (a.syms().resolve(*s), v.as_str()))
        .collect();
    let mut ya: Vec<(&str, &str)> = b
        .attrs(y)
        .iter()
        .map(|(s, v)| (b.syms().resolve(*s), v.as_str()))
        .collect();
    xa.sort_unstable();
    ya.sort_unstable();
    xa == ya
}

fn equiv_nodes(
    a: &Document,
    x: NodeId,
    ann_a: &Annotations,
    b: &Document,
    y: NodeId,
    ann_b: &Annotations,
) -> bool {
    if !attrs_equal(a, x, b, y) {
        return false;
    }
    // Frontier nodes: strict ordered equality of content.
    if ann_a.is_frontier(x) || ann_b.is_frontier(y) {
        return ann_a.is_frontier(x)
            && ann_b.is_frontier(y)
            && cmp_node_lists(a, a.children(x), b, b.children(y)) == Ordering::Equal;
    }
    // Partition children into keyed and other.
    let mut ka: Vec<(String, KeyValue, NodeId)> = Vec::new();
    let mut oa: Vec<NodeId> = Vec::new();
    for &c in a.children(x) {
        match (&a.node(c).kind, ann_a.key(c)) {
            (NodeKind::Element(s), Some(k)) => {
                ka.push((a.syms().resolve(*s).to_owned(), k.clone(), c))
            }
            _ => oa.push(c),
        }
    }
    let mut kb: Vec<(String, KeyValue, NodeId)> = Vec::new();
    let mut ob: Vec<NodeId> = Vec::new();
    for &c in b.children(y) {
        match (&b.node(c).kind, ann_b.key(c)) {
            (NodeKind::Element(s), Some(k)) => {
                kb.push((b.syms().resolve(*s).to_owned(), k.clone(), c))
            }
            _ => ob.push(c),
        }
    }
    if ka.len() != kb.len() || oa.len() != ob.len() {
        return false;
    }
    let lbl_cmp = |p: &(String, KeyValue, NodeId), q: &(String, KeyValue, NodeId)| {
        p.0.cmp(&q.0).then_with(|| p.1.cmp_parts(&q.1))
    };
    ka.sort_by(lbl_cmp);
    kb.sort_by(lbl_cmp);
    for (pa, pb) in ka.iter().zip(kb.iter()) {
        if pa.0 != pb.0 || pa.1.cmp_parts(&pb.1) != Ordering::Equal {
            return false;
        }
        if !equiv_nodes(a, pa.2, ann_a, b, pb.2, ann_b) {
            return false;
        }
    }
    // Unkeyed children: compare as multisets of canonical forms (the
    // archiver's fallback matching is order-insensitive too).
    let mut counts: HashMap<String, isize> = HashMap::new();
    for &c in &oa {
        *counts.entry(canonical(a, c)).or_insert(0) += 1;
    }
    for &c in &ob {
        *counts.entry(canonical(b, c)).or_insert(0) -= 1;
    }
    counts.values().all(|&n| n == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xarch_xml::parse;

    fn spec() -> KeySpec {
        KeySpec::parse(
            "(/, (db, {}))\n\
             (/db, (dept, {name}))\n\
             (/db/dept, (emp, {fn, ln}))\n\
             (/db/dept/emp, (sal, {}))\n\
             (/db/dept/emp, (tel, {.}))",
        )
        .unwrap()
    }

    #[test]
    fn reordered_keyed_siblings_are_equivalent() {
        let a = parse(
            "<db><dept><name>f</name>\
             <emp><fn>A</fn><ln>X</ln></emp><emp><fn>B</fn><ln>Y</ln></emp></dept></db>",
        )
        .unwrap();
        let b = parse(
            "<db><dept><name>f</name>\
             <emp><fn>B</fn><ln>Y</ln></emp><emp><fn>A</fn><ln>X</ln></emp></dept></db>",
        )
        .unwrap();
        assert!(equiv_modulo_key_order(&a, &b, &spec()));
        // strict equality does NOT hold
        assert!(!xarch_xml::value_equal(&a, a.root(), &b, b.root()));
    }

    #[test]
    fn different_content_is_not_equivalent() {
        let a = parse("<db><dept><name>f</name></dept></db>").unwrap();
        let b = parse("<db><dept><name>g</name></dept></db>").unwrap();
        assert!(!equiv_modulo_key_order(&a, &b, &spec()));
    }

    #[test]
    fn missing_element_is_not_equivalent() {
        let a =
            parse("<db><dept><name>f</name><emp><fn>A</fn><ln>X</ln></emp></dept></db>").unwrap();
        let b = parse("<db><dept><name>f</name></dept></db>").unwrap();
        assert!(!equiv_modulo_key_order(&a, &b, &spec()));
        assert!(!equiv_modulo_key_order(&b, &a, &spec()));
    }

    #[test]
    fn frontier_content_order_matters() {
        // tel content is a frontier value; sal's children order matters
        let a = parse(
            "<db><dept><name>f</name><emp><fn>A</fn><ln>X</ln>\
             <sal>90K</sal></emp></dept></db>",
        )
        .unwrap();
        let b = parse(
            "<db><dept><name>f</name><emp><fn>A</fn><ln>X</ln>\
             <sal>91K</sal></emp></dept></db>",
        )
        .unwrap();
        assert!(!equiv_modulo_key_order(&a, &b, &spec()));
        assert!(equiv_modulo_key_order(&a, &a, &spec()));
    }

    #[test]
    fn identical_documents_are_equivalent() {
        let a = parse(
            "<db><dept><name>f</name>\
             <emp><fn>A</fn><ln>X</ln><sal>90K</sal><tel>1</tel><tel>2</tel></emp></dept></db>",
        )
        .unwrap();
        assert!(equiv_modulo_key_order(&a, &a, &spec()));
    }

    #[test]
    fn duplicate_keys_differ_from_single() {
        let a = parse(
            "<db><dept><name>f</name><emp><fn>A</fn><ln>X</ln><tel>1</tel><tel>1</tel></emp></dept></db>",
        )
        .unwrap();
        let b = parse(
            "<db><dept><name>f</name><emp><fn>A</fn><ln>X</ln><tel>1</tel></emp></dept></db>",
        )
        .unwrap();
        assert!(!equiv_modulo_key_order(&a, &b, &spec()));
    }
}
