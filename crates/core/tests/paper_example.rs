//! End-to-end reproduction of the paper's running example: the company
//! database of Figure 2 archived into the structure of Figures 4/9, the
//! Fig-5 XML rendering, retrieval, temporal history, change description,
//! empty versions (§2 footnote), weave compaction (Fig 10) and chunking.

use xarch_core::{
    describe_changes, equiv_modulo_key_order, Archive, ChangeKind, ChunkedArchive, Compaction,
    KeyQuery, TimeSet,
};
use xarch_keys::KeySpec;
use xarch_xml::{parse, Document};

fn spec() -> KeySpec {
    KeySpec::parse(
        "(/, (db, {}))\n\
         (/db, (dept, {name}))\n\
         (/db/dept, (emp, {fn, ln}))\n\
         (/db/dept/emp, (sal, {}))\n\
         (/db/dept/emp, (tel, {.}))",
    )
    .unwrap()
}

/// The four versions of Figure 2.
fn versions() -> Vec<Document> {
    let v1 = "<db><dept><name>finance</name></dept></db>";
    let v2 = "<db><dept><name>finance</name>\
              <emp><fn>Jane</fn><ln>Smith</ln></emp></dept></db>";
    let v3 = "<db>\
              <dept><name>finance</name>\
                <emp><fn>John</fn><ln>Doe</ln><sal>90K</sal><tel>123-4567</tel></emp></dept>\
              <dept><name>marketing</name>\
                <emp><fn>John</fn><ln>Doe</ln></emp></dept>\
              </db>";
    let v4 = "<db><dept><name>finance</name>\
              <emp><fn>John</fn><ln>Doe</ln><sal>95K</sal><tel>123-4567</tel></emp>\
              <emp><fn>Jane</fn><ln>Smith</ln><sal>95K</sal><tel>123-6789</tel><tel>112-3456</tel></emp>\
              </dept></db>";
    [v1, v2, v3, v4].iter().map(|s| parse(s).unwrap()).collect()
}

fn archive_versions(compaction: Compaction) -> Archive {
    let mut a = Archive::with_compaction(spec(), compaction);
    for v in &versions() {
        a.add_version(v).unwrap();
        a.check_invariants().unwrap();
    }
    a
}

#[test]
fn every_version_retrievable() {
    let a = archive_versions(Compaction::Alternatives);
    let vs = versions();
    for (i, v) in vs.iter().enumerate() {
        let got = a.retrieve(i as u32 + 1).expect("version exists");
        assert!(
            equiv_modulo_key_order(&got, v, a.spec()),
            "version {} mismatch:\n got: {}\nwant: {}",
            i + 1,
            xarch_xml::writer::to_compact_string(&got),
            xarch_xml::writer::to_compact_string(v),
        );
    }
    assert!(a.retrieve(0).is_none());
    assert!(a.retrieve(5).is_none());
}

#[test]
fn every_version_retrievable_with_weave() {
    let a = archive_versions(Compaction::Weave);
    let vs = versions();
    for (i, v) in vs.iter().enumerate() {
        let got = a.retrieve(i as u32 + 1).expect("version exists");
        assert!(
            equiv_modulo_key_order(&got, v, a.spec()),
            "weave: version {} mismatch",
            i + 1
        );
    }
}

#[test]
fn figure_4_timestamps() {
    let a = archive_versions(Compaction::Alternatives);
    // root t=[1-4]
    let root_t = a.node(a.root()).time.clone().unwrap();
    assert_eq!(root_t.to_string(), "1-4");

    let db = KeyQuery::new("db");
    let finance = KeyQuery::new("dept").with_text("name", "finance");
    let marketing = KeyQuery::new("dept").with_text("name", "marketing");
    let john = KeyQuery::new("emp")
        .with_text("fn", "John")
        .with_text("ln", "Doe");
    let jane = KeyQuery::new("emp")
        .with_text("fn", "Jane")
        .with_text("ln", "Smith");

    // dept{name=marketing}: t=[3]
    let t = a.history(&[db.clone(), marketing.clone()]).unwrap();
    assert_eq!(t.to_string(), "3");
    // emp{John Doe} in finance: t=[3-4]
    let t = a
        .history(&[db.clone(), finance.clone(), john.clone()])
        .unwrap();
    assert_eq!(t.to_string(), "3-4");
    // emp{Jane Smith}: t=[2,4]  — the paper's re-appearing employee
    let t = a
        .history(&[db.clone(), finance.clone(), jane.clone()])
        .unwrap();
    assert_eq!(t.to_string(), "2,4");
    // Jane's tel{123-6789}: t=[4]
    let tel = KeyQuery::new("tel").with_canon(".", "<tel>123-6789</tel>");
    let t = a
        .history(&[db.clone(), finance.clone(), jane.clone(), tel])
        .unwrap();
    assert_eq!(t.to_string(), "4");
    // John Doe of marketing exists only at 3 (distinct from finance's John)
    let t = a.history(&[db.clone(), marketing, john.clone()]).unwrap();
    assert_eq!(t.to_string(), "3");
    // nonexistent employee
    assert!(a
        .history(&[
            db,
            finance,
            KeyQuery::new("emp")
                .with_text("fn", "Bob")
                .with_text("ln", "Hope")
        ])
        .is_none());
}

#[test]
fn salary_alternatives_match_figure_4() {
    // "during these times, John has salary 90K at version 3 and 95K at
    // version 4"
    let a = archive_versions(Compaction::Alternatives);
    let path = [
        KeyQuery::new("db"),
        KeyQuery::new("dept").with_text("name", "finance"),
        KeyQuery::new("emp")
            .with_text("fn", "John")
            .with_text("ln", "Doe"),
        KeyQuery::new("sal"),
    ];
    let t90 = a.value_history(&path, "90K").unwrap();
    assert_eq!(t90.to_string(), "3");
    let t95 = a.value_history(&path, "95K").unwrap();
    assert_eq!(t95.to_string(), "4");
    let t_other = a.value_history(&path, "1M").unwrap();
    assert!(t_other.is_empty());
}

#[test]
fn figure_5_xml_round_trip() {
    let a = archive_versions(Compaction::Alternatives);
    let xml = a.to_xml();
    // top level is <T t="1-4"><root><db>...
    assert_eq!(xml.tag_name(xml.root()), "T");
    assert_eq!(xml.attr(xml.root(), "t"), Some("1-4"));
    let txt = a.to_xml_pretty();
    assert!(txt.contains("<T t=\"3\">"), "{txt}");

    // parse the XML text and rebuild the archive
    let reparsed = parse(&txt).unwrap();
    let b = xarch_core::xmlrep::from_xml(&reparsed, a.spec()).unwrap();
    b.check_invariants().unwrap();
    assert_eq!(b.latest(), 4);
    for v in 1..=4 {
        let da = a.retrieve(v);
        let db = b.retrieve(v);
        match (da, db) {
            (Some(da), Some(db)) => {
                assert!(equiv_modulo_key_order(&da, &db, a.spec()), "version {v}")
            }
            (None, None) => {}
            _ => panic!("presence mismatch at version {v}"),
        }
    }
}

#[test]
fn empty_version_footnote() {
    // §2 footnote: archive an empty version 5 — root gets t=[1-5] while db
    // stays t=[1-4].
    let mut a = archive_versions(Compaction::Alternatives);
    let v5 = a.add_empty_version();
    assert_eq!(v5, 5);
    a.check_invariants().unwrap();
    assert_eq!(a.node(a.root()).time.clone().unwrap().to_string(), "1-5");
    let db_t = a.history(&[KeyQuery::new("db")]).unwrap();
    assert_eq!(db_t.to_string(), "1-4");
    assert!(a.has_version(5));
    assert!(a.retrieve(5).is_none());
    // archive version 6 with data again: db returns
    let v6doc = parse("<db><dept><name>finance</name></dept></db>").unwrap();
    a.add_version(&v6doc).unwrap();
    a.check_invariants().unwrap();
    let db_t = a.history(&[KeyQuery::new("db")]).unwrap();
    assert_eq!(db_t.to_string(), "1-4,6");
    let got = a.retrieve(6).unwrap();
    assert!(equiv_modulo_key_order(&got, &v6doc, a.spec()));
}

#[test]
fn changes_are_semantically_meaningful() {
    let a = archive_versions(Compaction::Alternatives);
    // v3 -> v4: marketing dept deleted; Jane re-added; John's sal changed.
    let ch = describe_changes(&a, 3, 4);
    let find = |needle: &str, kind: ChangeKind| {
        ch.iter().any(|c| c.kind == kind && c.path.contains(needle))
    };
    assert!(find("marketing", ChangeKind::Deleted), "{ch:#?}");
    assert!(find("Jane", ChangeKind::Added), "{ch:#?}");
    let sal = ch
        .iter()
        .find(|c| {
            c.kind == ChangeKind::Modified && c.path.contains("John") && c.path.ends_with("/sal")
        })
        .expect("salary change");
    let (from, to) = sal.detail.clone().unwrap();
    assert_eq!(from, "90K");
    assert_eq!(to, "95K");
    // John himself is NOT added/deleted — his continuity is preserved.
    assert!(
        !ch.iter().any(|c| {
            c.path.contains("John")
                && c.path.contains("finance")
                && c.kind != ChangeKind::Modified
                && !c.path.ends_with("/sal")
        }),
        "{ch:#?}"
    );
}

#[test]
fn gene_swap_example_of_figure_1() {
    // The motivating example: diff reports nonsense (genes changing ids);
    // the key-based archive reports seq/pos content changes per gene.
    let spec = KeySpec::parse("(/, (genes, {}))\n(/genes, (gene, {id}))\n\
                               (/genes/gene, (name, {}))\n(/genes/gene, (seq, {}))\n(/genes/gene, (pos, {}))")
        .unwrap();
    let v1 = parse(
        "<genes>\
         <gene><id>6230</id><name>GRTM</name><seq>GTCG...</seq><pos>11A52</pos></gene>\
         <gene><id>2953</id><name>ACV2</name><seq>AGTT...</seq><pos>08A96</pos></gene>\
         </genes>",
    )
    .unwrap();
    let v2 = parse(
        "<genes>\
         <gene><id>2953</id><name>ACV2</name><seq>GTCG...</seq><pos>11A52</pos></gene>\
         <gene><id>6230</id><name>GRTM</name><seq>AGTT...</seq><pos>08A96</pos></gene>\
         </genes>",
    )
    .unwrap();
    let mut a = Archive::new(spec);
    a.add_version(&v1).unwrap();
    a.add_version(&v2).unwrap();
    a.check_invariants().unwrap();
    let ch = describe_changes(&a, 1, 2);
    // No gene is added or deleted — identity follows the key.
    assert!(ch.iter().all(|c| c.kind == ChangeKind::Modified), "{ch:#?}");
    // Each gene's seq and pos changed (2 genes × 2 fields).
    assert_eq!(ch.len(), 4, "{ch:#?}");
    assert!(ch
        .iter()
        .any(|c| c.path.contains("6230") && c.path.ends_with("/seq")));
    assert!(ch
        .iter()
        .any(|c| c.path.contains("2953") && c.path.ends_with("/pos")));
    // names did NOT change
    assert!(!ch.iter().any(|c| c.path.ends_with("/name")));
}

#[test]
fn chunked_equals_whole() {
    let whole = archive_versions(Compaction::Alternatives);
    let mut chunked = ChunkedArchive::new(spec(), 3);
    for v in &versions() {
        chunked.add_version(v).unwrap();
    }
    assert_eq!(chunked.latest(), 4);
    for v in 1..=4u32 {
        let a = whole.retrieve(v).unwrap();
        let b = chunked.retrieve(v).unwrap();
        assert!(
            equiv_modulo_key_order(&a, &b, whole.spec()),
            "chunked mismatch at version {v}"
        );
    }
}

#[test]
fn shared_elements_stored_once() {
    // The finance dept name appears in all 4 versions but is stored once.
    let a = archive_versions(Compaction::Alternatives);
    let xml = a.to_xml_compact();
    assert_eq!(xml.matches("finance").count(), 1, "{xml}");
    // John's unchanged tel appears once even though sal changed.
    assert_eq!(xml.matches("123-4567").count(), 1, "{xml}");
}

#[test]
fn timestamp_superset_invariant_is_checked() {
    let a = archive_versions(Compaction::Alternatives);
    a.check_invariants().unwrap();
    let s = a.stats();
    assert!(s.stamps >= 2, "sal alternatives expected: {s:?}");
    assert!(s.explicit_times >= 4);
}

#[test]
fn idempotent_version_is_cheap() {
    // Archiving the same version twice must not grow the element count.
    let mut a = Archive::new(spec());
    let v = versions().remove(3);
    a.add_version(&v).unwrap();
    let before = a.stats();
    a.add_version(&v).unwrap();
    a.check_invariants().unwrap();
    let after = a.stats();
    assert_eq!(before.elements, after.elements);
    assert_eq!(before.texts, after.texts);
    let t = TimeSet::from_range(1, 2);
    assert_eq!(a.node(a.root()).time.clone().unwrap(), t);
}
