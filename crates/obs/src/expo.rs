//! Exposition writers: Prometheus text format and JSON, rendered from a
//! [`Registry`] snapshot. Both are dependency-free string builders.

use std::fmt::Write as _;

use crate::metrics::{bucket_bound, HistogramSnapshot};
use crate::registry::{Registry, SampleValue};

/// Canonical dot-namespaced names become Prometheus-legal identifiers
/// (`segment.fsyncs` → `segment_fsyncs`).
pub fn prometheus_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn write_histogram(out: &mut String, pname: &str, h: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for (i, &n) in h.buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        cumulative += n;
        let _ = writeln!(
            out,
            "{pname}_bucket{{le=\"{}\"}} {cumulative}",
            bucket_bound(i)
        );
    }
    let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{pname}_sum {}", h.sum);
    let _ = writeln!(out, "{pname}_count {}", h.count);
}

/// Render every registered metric in the Prometheus text exposition
/// format: `# HELP` / `# TYPE` headers, plain samples for counters and
/// gauges, cumulative `_bucket{le=…}` series plus `_sum`/`_count` for
/// histograms. The `# UNIT` comment line carries the canonical unit.
pub fn render_prometheus(registry: &Registry) -> String {
    let mut out = String::new();
    for m in registry.samples() {
        let pname = prometheus_name(&m.name);
        let _ = writeln!(out, "# HELP {pname} {}", m.help);
        let _ = writeln!(out, "# UNIT {pname} {}", m.unit);
        let _ = writeln!(out, "# TYPE {pname} {}", m.kind.as_str());
        match &m.value {
            SampleValue::Counter(v) => {
                let _ = writeln!(out, "{pname} {v}");
            }
            SampleValue::Gauge(v) => {
                let _ = writeln!(out, "{pname} {v}");
            }
            SampleValue::Histogram(h) => write_histogram(&mut out, &pname, h),
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render every registered metric as a single JSON object keyed by
/// canonical metric name. Counters and gauges map to numbers; histograms
/// map to `{count, sum, max, p50, p90, p99, mean}` summaries.
pub fn render_json(registry: &Registry) -> String {
    let mut out = String::from("{");
    let samples = registry.samples();
    for (i, m) in samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  \"{}\": {{\"kind\": \"{}\", \"unit\": \"{}\", \"value\": ",
            json_escape(&m.name),
            m.kind.as_str(),
            json_escape(m.unit)
        );
        match &m.value {
            SampleValue::Counter(v) => {
                let _ = write!(out, "{v}");
            }
            SampleValue::Gauge(v) => {
                let _ = write!(out, "{v}");
            }
            SampleValue::Histogram(h) => {
                let _ = write!(
                    out,
                    "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"mean\": {}}}",
                    h.count,
                    h.sum,
                    h.max,
                    h.p50,
                    h.p90,
                    h.p99,
                    h.mean()
                );
            }
        }
        out.push('}');
    }
    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> Registry {
        let r = Registry::new();
        r.counter("segment.fsyncs", "syncs", "commit fsyncs").add(1);
        r.gauge("segment.journal_len", "bytes", "live journal length")
            .set(4096);
        let h = r.histogram("query.retrieve.duration", "micros", "retrieve latency");
        h.record(10);
        h.record(1000);
        r
    }

    #[test]
    fn prometheus_text_has_headers_and_samples() {
        let text = render_prometheus(&seeded());
        assert!(text.contains("# TYPE segment_fsyncs counter"), "{text}");
        assert!(text.contains("segment_fsyncs 1"), "{text}");
        assert!(text.contains("segment_journal_len 4096"), "{text}");
        assert!(
            text.contains("# UNIT query_retrieve_duration micros"),
            "{text}"
        );
        assert!(text.contains("query_retrieve_duration_count 2"), "{text}");
        assert!(text.contains("query_retrieve_duration_sum 1010"), "{text}");
        assert!(text.contains("_bucket{le=\"+Inf\"} 2"), "{text}");
    }

    #[test]
    fn histogram_bucket_series_is_cumulative() {
        let text = render_prometheus(&seeded());
        assert!(
            text.contains("query_retrieve_duration_bucket{le=\"15\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("query_retrieve_duration_bucket{le=\"1023\"} 2"),
            "{text}"
        );
    }

    #[test]
    fn json_is_keyed_by_canonical_name() {
        let json = render_json(&seeded());
        assert!(json.contains("\"segment.fsyncs\""), "{json}");
        assert!(json.contains("\"kind\": \"gauge\""), "{json}");
        assert!(json.contains("\"count\": 2"), "{json}");
        assert!(
            json.starts_with('{') && json.trim_end().ends_with('}'),
            "{json}"
        );
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(
            prometheus_name("query.as_of.duration"),
            "query_as_of_duration"
        );
    }
}
