//! Lightweight structured tracing: level-filtered key=value events with a
//! pluggable sink, a bounded ring buffer of recent events for post-mortem
//! inspection (recovery, poisoning), and timed [`Span`] scopes that feed
//! duration histograms.

use std::collections::VecDeque;
use std::fmt;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use crate::metrics::Histogram;

/// Event severity, ordered from most to least urgent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Something failed; the operation did not complete as asked.
    Error = 1,
    /// Something unusual was handled (torn tail, skipped checkpoint).
    Warn = 2,
    /// Routine milestones: opens, commits, recovery summaries.
    Info = 3,
    /// Per-operation details, including span durations.
    Debug = 4,
    /// Highest-volume diagnostics.
    Trace = 5,
}

impl Level {
    /// The level's conventional upper-case log label.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            1 => Level::Error,
            2 => Level::Warn,
            4 => Level::Debug,
            5 => Level::Trace,
            _ => Level::Info,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured event: a severity, a dot-namespaced target naming the
/// operation (`recovery.torn_tail`), and key=value fields.
#[derive(Clone, Debug)]
pub struct Event {
    /// Monotone per-tracer sequence number (ring-buffer eviction keeps
    /// gaps visible).
    pub seq: u64,
    /// Severity the event was emitted at.
    pub level: Level,
    /// Dot-namespaced operation name, e.g. `recovery.torn_tail`.
    pub target: &'static str,
    /// Structured key=value payload, in emission order.
    pub fields: Vec<(&'static str, String)>,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>5}] {:5} {}", self.seq, self.level, self.target)?;
        for (k, v) in &self.fields {
            if v.contains([' ', '"']) {
                write!(f, " {k}={v:?}")?;
            } else {
                write!(f, " {k}={v}")?;
            }
        }
        Ok(())
    }
}

/// Where rendered events go. Implementations must tolerate concurrent
/// calls; the tracer renders before dispatch so sinks never re-enter it.
pub trait EventSink: Send + Sync {
    /// Deliver one already-rendered event.
    fn emit(&self, event: &Event);
}

/// Default sink: one line per event on standard error.
#[derive(Debug, Default)]
pub struct StderrSink;

impl EventSink for StderrSink {
    fn emit(&self, event: &Event) {
        // Ignore a broken stderr — observability must never take the
        // archiver down.
        let _ = writeln!(std::io::stderr().lock(), "{event}");
    }
}

/// Sink that drops everything; used by `Obs::disconnected()` so embedded
/// components can trace unconditionally without console side effects.
#[derive(Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: &Event) {}
}

/// Sink that appends to a shared vector — test and report harness helper.
#[derive(Clone, Debug, Default)]
pub struct VecSink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl VecSink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take every captured event, leaving the sink empty.
    pub fn drain(&self) -> Vec<Event> {
        let mut g = self.events.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *g)
    }
}

impl EventSink for VecSink {
    fn emit(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event.clone());
    }
}

/// Default capacity of the recent-events ring buffer.
pub const DEFAULT_RING_CAPACITY: usize = 256;

#[derive(Debug)]
struct TracerInner {
    /// Max level forwarded to the sink (ring capture is unconditional).
    filter: AtomicU8,
    seq: AtomicU64,
    sink: RwLock<Arc<dyn EventSink>>,
    ring: Mutex<VecDeque<Event>>,
    ring_cap: usize,
}

impl fmt::Debug for dyn EventSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("EventSink")
    }
}

/// Cheap-clone event dispatcher.
///
/// Every emitted event lands in the bounded ring buffer (so post-mortems
/// after recovery or poisoning can read back what happened regardless of
/// console verbosity); events at or above the level filter additionally
/// go to the pluggable sink.
#[derive(Clone, Debug)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::with_sink(Arc::new(StderrSink), Level::Warn)
    }
}

impl Tracer {
    /// Tracer with the default stderr sink, forwarding `Warn` and above.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tracer forwarding events at or above `filter` to `sink`.
    pub fn with_sink(sink: Arc<dyn EventSink>, filter: Level) -> Self {
        Self {
            inner: Arc::new(TracerInner {
                filter: AtomicU8::new(filter as u8),
                seq: AtomicU64::new(0),
                sink: RwLock::new(sink),
                ring: Mutex::new(VecDeque::with_capacity(DEFAULT_RING_CAPACITY)),
                ring_cap: DEFAULT_RING_CAPACITY,
            }),
        }
    }

    /// Tracer whose sink discards everything (ring buffer still records).
    pub fn silent() -> Self {
        Self::with_sink(Arc::new(NullSink), Level::Error)
    }

    /// Current sink forwarding threshold.
    pub fn level(&self) -> Level {
        Level::from_u8(self.inner.filter.load(Ordering::Relaxed))
    }

    /// Change the sink forwarding threshold at runtime.
    pub fn set_level(&self, level: Level) {
        self.inner.filter.store(level as u8, Ordering::Relaxed);
    }

    /// Replace the sink (e.g. route events into a log shipper).
    pub fn set_sink(&self, sink: Arc<dyn EventSink>) {
        let mut g = self.inner.sink.write().unwrap_or_else(|e| e.into_inner());
        *g = sink;
    }

    /// Whether an event at `level` would reach the sink.
    pub fn enabled(&self, level: Level) -> bool {
        level <= self.level()
    }

    /// Emit a structured event.
    pub fn event(&self, level: Level, target: &'static str, fields: &[(&'static str, String)]) {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let event = Event {
            seq,
            level,
            target,
            fields: fields.to_vec(),
        };
        {
            let mut ring = self.inner.ring.lock().unwrap_or_else(|e| e.into_inner());
            if ring.len() == self.inner.ring_cap {
                ring.pop_front();
            }
            ring.push_back(event.clone());
        }
        if self.enabled(level) {
            let sink = {
                let g = self.inner.sink.read().unwrap_or_else(|e| e.into_inner());
                Arc::clone(&g)
            };
            sink.emit(&event);
        }
    }

    /// The last `DEFAULT_RING_CAPACITY` (or fewer) events, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        self.inner
            .ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Total events emitted since construction (including ones evicted
    /// from the ring).
    pub fn emitted(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }
}

/// A timed scope: records its duration (µs) into a histogram on drop and,
/// when tracing is enabled at `Debug`, emits a `target elapsed_us=…`
/// event. Created via [`crate::Obs::span`].
#[derive(Debug)]
pub struct Span {
    hist: Histogram,
    tracer: Option<Tracer>,
    target: &'static str,
    start: Instant,
}

impl Span {
    /// Start a span now; its duration lands in `hist` when it ends.
    pub fn new(target: &'static str, hist: Histogram, tracer: Option<Tracer>) -> Self {
        Self {
            hist,
            tracer,
            target,
            start: Instant::now(),
        }
    }

    /// End the span now instead of at scope exit.
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        self.hist.record_duration(elapsed);
        if let Some(t) = &self.tracer {
            if t.enabled(Level::Debug) {
                t.event(
                    Level::Debug,
                    self.target,
                    &[("elapsed_us", elapsed.as_micros().to_string())],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_last_n_oldest_first() {
        let t = Tracer::silent();
        for i in 0..(DEFAULT_RING_CAPACITY as u64 + 10) {
            t.event(Level::Info, "test.tick", &[("i", i.to_string())]);
        }
        let recent = t.recent();
        assert_eq!(recent.len(), DEFAULT_RING_CAPACITY);
        assert_eq!(recent[0].seq, 10, "oldest ten evicted");
        assert_eq!(
            recent.last().expect("nonempty").seq,
            DEFAULT_RING_CAPACITY as u64 + 9
        );
        assert_eq!(t.emitted(), DEFAULT_RING_CAPACITY as u64 + 10);
    }

    #[test]
    fn level_filter_gates_sink_not_ring() {
        let sink = VecSink::new();
        let t = Tracer::with_sink(Arc::new(sink.clone()), Level::Warn);
        t.event(Level::Info, "test.quiet", &[]);
        t.event(Level::Error, "test.loud", &[("why", "boom".to_string())]);
        let seen = sink.drain();
        assert_eq!(seen.len(), 1, "info filtered from sink");
        assert_eq!(seen[0].target, "test.loud");
        assert_eq!(t.recent().len(), 2, "ring captures everything");
    }

    #[test]
    fn set_level_takes_effect() {
        let sink = VecSink::new();
        let t = Tracer::with_sink(Arc::new(sink.clone()), Level::Error);
        assert!(!t.enabled(Level::Info));
        t.set_level(Level::Trace);
        assert!(t.enabled(Level::Debug));
        t.event(Level::Debug, "test.now_visible", &[]);
        assert_eq!(sink.drain().len(), 1);
    }

    #[test]
    fn event_renders_as_key_values() {
        let e = Event {
            seq: 3,
            level: Level::Warn,
            target: "recovery.torn_tail",
            fields: vec![
                ("offset", "128".to_string()),
                ("reason", "short read".to_string()),
            ],
        };
        let s = e.to_string();
        assert!(s.contains("WARN"), "{s}");
        assert!(s.contains("recovery.torn_tail offset=128"), "{s}");
        assert!(s.contains("reason=\"short read\""), "quoted: {s}");
    }

    #[test]
    fn span_records_duration_and_debug_event() {
        let sink = VecSink::new();
        let t = Tracer::with_sink(Arc::new(sink.clone()), Level::Debug);
        let h = Histogram::new();
        Span::new("test.op", h.clone(), Some(t)).end();
        assert_eq!(h.count(), 1);
        let seen = sink.drain();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].fields[0].0, "elapsed_us");
    }
}
