//! Atomic metric primitives: [`Counter`], [`Gauge`], and a log-bucketed
//! latency [`Histogram`].
//!
//! All three are cheap-clone handles over `Arc`'d atomics: recording a
//! sample is a handful of relaxed atomic RMW operations and never takes a
//! lock, so handles can sit on commit and query hot paths. A handle starts
//! *detached* — backed by its own storage, visible only to whoever holds a
//! clone — and becomes *registered* when created through (or installed
//! into) a [`Registry`](crate::Registry), which is how the same counter
//! ends up visible both to the component that increments it and to the
//! exposition writer that reports it.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonically increasing event count.
///
/// `reset()` exists for measurement windows (benchmarks that want a
/// per-query delta); production readers should treat the value as
/// monotone and difference successive readings instead.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    v: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh detached counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A detached counter seeded with `v` — used when cloning a component
    /// that carries per-instance counts.
    pub fn with_value(v: u64) -> Self {
        let c = Self::new();
        c.add(v);
        c
    }

    /// Count one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Count `n` events at once.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }

    /// Zero the counter. Only meaningful for detached measurement-window
    /// counters; registered counters should stay monotone.
    pub fn reset(&self) {
        self.v.store(0, Ordering::Relaxed);
    }
}

/// A value that can go up and down (resident bytes, live journal length).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    v: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh detached gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the current value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Saturating convenience for byte lengths and other `u64` sources.
    #[inline]
    pub fn set_u64(&self, v: u64) {
        self.set(i64::try_from(v).unwrap_or(i64::MAX));
    }

    /// Move the value by `d` (negative deltas decrease it).
    #[inline]
    pub fn add(&self, d: i64) {
        self.v.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds zero-valued samples and
/// bucket `i` (1..=64) holds values in `[2^(i-1), 2^i - 1]`.
pub const BUCKETS: usize = 65;

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

/// A lock-free latency/size histogram with logarithmic (power-of-two)
/// buckets.
///
/// `record` is three relaxed atomic RMWs; there is deliberately no
/// separate total-count cell — `count()` is defined as the sum over the
/// buckets, so `count == Σ buckets` holds by construction no matter how
/// recording races with readout.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            inner: Arc::new(HistInner {
                buckets: [const { AtomicU64::new(0) }; BUCKETS],
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }
}

/// Index of the bucket holding `v`: 0 for 0, else `64 - leading_zeros`.
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (the value reported for quantiles
/// that land in it).
#[inline]
pub fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// A fresh detached histogram with empty buckets.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample. Lock-free: three relaxed atomic operations.
    #[inline]
    pub fn record(&self, v: u64) {
        self.inner.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
        self.inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record an elapsed duration in microseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Start a guard that records the elapsed time (µs) when dropped.
    ///
    /// This is the sanctioned way to time an operation — the workspace
    /// `obs-discipline` analysis rule rejects raw `Instant::now()` timing
    /// outside this crate.
    #[inline]
    pub fn start_timer(&self) -> Timer {
        Timer {
            hist: self.clone(),
            start: Instant::now(),
        }
    }

    /// Total recorded samples, defined as the sum over all buckets.
    pub fn count(&self) -> u64 {
        self.inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (exact, unlike the bucketed quantiles).
    pub fn max(&self) -> u64 {
        self.inner.max.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the bucket array.
    pub fn buckets(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (o, b) in out.iter_mut().zip(self.inner.buckets.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Consistent snapshot for exposition: reads the buckets once and
    /// derives count/quantiles from that single copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self.buckets();
        let count: u64 = buckets.iter().sum();
        let max = self.max();
        let q = |quantile: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
            #[allow(clippy::cast_possible_truncation)]
            let target = ((quantile * count as f64).ceil() as u64).max(1);
            let mut seen = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= target {
                    return bucket_bound(i).min(max.max(bucket_bound(i.saturating_sub(1))));
                }
            }
            max
        };
        HistogramSnapshot {
            count,
            sum: self.sum(),
            max,
            p50: q(0.50),
            p90: q(0.90),
            p99: q(0.99),
            buckets,
        }
    }
}

/// Drop guard returned by [`Histogram::start_timer`].
#[derive(Debug)]
pub struct Timer {
    hist: Histogram,
    start: Instant,
}

impl Timer {
    /// Stop timing and record now instead of at scope end.
    pub fn stop(self) {}

    /// Elapsed time so far, without recording.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

/// Point-in-time readout of a [`Histogram`].
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Total samples in the snapshot.
    pub count: u64,
    /// Sum of all sampled values.
    pub sum: u64,
    /// Largest sampled value (exact).
    pub max: u64,
    /// Upper bound of the bucket containing the 50th percentile sample.
    pub p50: u64,
    /// Upper bound of the bucket containing the 90th percentile sample.
    pub p90: u64,
    /// Upper bound of the bucket containing the 99th percentile sample.
    pub p99: u64,
    /// The raw per-bucket counts the quantiles were derived from.
    pub buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// Mean of recorded values, zero when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_resets() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let alias = c.clone();
        alias.inc();
        assert_eq!(c.get(), 6, "clones share storage");
        c.reset();
        assert_eq!(alias.get(), 0);
        assert_eq!(Counter::with_value(9).get(), 9);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        g.set_u64(u64::MAX);
        assert_eq!(g.get(), i64::MAX, "saturates instead of wrapping");
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_count_is_bucket_sum() {
        let h = Histogram::new();
        for v in [0, 1, 1, 3, 100, 5000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.buckets().iter().sum::<u64>(), 6);
        assert_eq!(h.sum(), 5105);
        assert_eq!(h.max(), 5000);
    }

    #[test]
    fn histogram_quantiles_track_bucket_bounds() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(10); // bucket 4, bound 15
        }
        for _ in 0..10 {
            h.record(1000); // bucket 10, bound 1023
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, 15);
        assert_eq!(s.p90, 15);
        assert!(s.p99 >= 1000, "tail lands in the large bucket: {}", s.p99);
        assert_eq!(s.max, 1000);
        assert_eq!(s.mean(), (90 * 10 + 10 * 1000) / 100);
    }

    #[test]
    fn empty_histogram_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.sum, s.max, s.p50, s.p99), (0, 0, 0, 0, 0));
    }

    #[test]
    fn timer_records_a_sample() {
        let h = Histogram::new();
        h.start_timer().stop();
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.count(), 2);
    }
}
