//! Namespaced, register-once metric registry.
//!
//! Components keep cloned handles to the metrics they record into; the
//! registry keeps the authoritative name → handle map the exposition
//! writers read from. Registration takes a mutex, recording never does —
//! the lock lives entirely off the hot path.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// What a registered name refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotone [`Counter`].
    Counter,
    /// An up/down [`Gauge`].
    Gauge,
    /// A log-bucketed [`Histogram`].
    Histogram,
}

impl MetricKind {
    /// The kind's lower-case exposition label.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone, Debug)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Handle {
    fn kind(&self) -> MetricKind {
        match self {
            Handle::Counter(_) => MetricKind::Counter,
            Handle::Gauge(_) => MetricKind::Gauge,
            Handle::Histogram(_) => MetricKind::Histogram,
        }
    }
}

#[derive(Debug)]
struct Entry {
    unit: &'static str,
    help: &'static str,
    handle: Handle,
}

/// A point-in-time reading of one registered metric, used by the
/// exposition writers.
#[derive(Clone, Debug)]
pub struct MetricSample {
    /// Dot-namespaced registered name, e.g. `segment.fsyncs`.
    pub name: String,
    /// Counter / gauge / histogram.
    pub kind: MetricKind,
    /// Unit label supplied at registration (`bytes`, `micros`, …).
    pub unit: &'static str,
    /// Human-readable description supplied at registration.
    pub help: &'static str,
    /// The value read at sampling time.
    pub value: SampleValue,
}

/// The typed value inside a [`MetricSample`].
#[derive(Clone, Debug)]
pub enum SampleValue {
    /// A counter's current count.
    Counter(u64),
    /// A gauge's current value.
    Gauge(i64),
    /// A histogram's consistent snapshot.
    Histogram(Box<HistogramSnapshot>),
}

/// Shared, cheaply clonable registry of named metrics.
///
/// Names are dot-namespaced (`segment.fsyncs`) and register-once:
/// requesting an existing name with the same kind returns a clone of the
/// existing handle (so two components can share a counter by name);
/// requesting it with a different kind is a caller bug and returns the
/// detached-handle equivalent while keeping the original registration.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Entry>>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Entry>> {
        // A poisoned metrics map only ever holds plain handles; keep
        // reporting rather than propagate a panic out of observability.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn register(&self, name: &str, unit: &'static str, help: &'static str, h: Handle) -> Handle {
        let mut map = self.lock();
        if let Some(existing) = map.get(name) {
            if existing.handle.kind() == h.kind() {
                return existing.handle.clone();
            }
            // Kind clash: leave the original registration authoritative
            // and hand the caller a detached handle of the kind it asked
            // for, so recording still works even if reporting won't see it.
            return h;
        }
        map.insert(
            name.to_string(),
            Entry {
                unit,
                help,
                handle: h.clone(),
            },
        );
        h
    }

    /// Register (or fetch) a counter under `name`.
    pub fn counter(&self, name: &str, unit: &'static str, help: &'static str) -> Counter {
        match self.register(name, unit, help, Handle::Counter(Counter::new())) {
            Handle::Counter(c) => c,
            _ => Counter::new(),
        }
    }

    /// Register (or fetch) a gauge under `name`.
    pub fn gauge(&self, name: &str, unit: &'static str, help: &'static str) -> Gauge {
        match self.register(name, unit, help, Handle::Gauge(Gauge::new())) {
            Handle::Gauge(g) => g,
            _ => Gauge::new(),
        }
    }

    /// Register (or fetch) a histogram under `name`.
    pub fn histogram(&self, name: &str, unit: &'static str, help: &'static str) -> Histogram {
        match self.register(name, unit, help, Handle::Histogram(Histogram::new())) {
            Handle::Histogram(h) => h,
            _ => Histogram::new(),
        }
    }

    /// Look up an already registered counter.
    pub fn get_counter(&self, name: &str) -> Option<Counter> {
        match self.lock().get(name).map(|e| e.handle.clone()) {
            Some(Handle::Counter(c)) => Some(c),
            _ => None,
        }
    }

    /// Look up an already registered gauge.
    pub fn get_gauge(&self, name: &str) -> Option<Gauge> {
        match self.lock().get(name).map(|e| e.handle.clone()) {
            Some(Handle::Gauge(g)) => Some(g),
            _ => None,
        }
    }

    /// Look up an already registered histogram.
    pub fn get_histogram(&self, name: &str) -> Option<Histogram> {
        match self.lock().get(name).map(|e| e.handle.clone()) {
            Some(Handle::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Read every registered metric, sorted by name.
    pub fn samples(&self) -> Vec<MetricSample> {
        self.lock()
            .iter()
            .map(|(name, e)| MetricSample {
                name: name.clone(),
                kind: e.handle.kind(),
                unit: e.unit,
                help: e.help,
                value: match &e.handle {
                    Handle::Counter(c) => SampleValue::Counter(c.get()),
                    Handle::Gauge(g) => SampleValue::Gauge(g.get()),
                    Handle::Histogram(h) => SampleValue::Histogram(Box::new(h.snapshot())),
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_once_returns_shared_handle() {
        let r = Registry::new();
        let a = r.counter("x.hits", "events", "test counter");
        let b = r.counter("x.hits", "events", "ignored on re-register");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same underlying cell");
        assert_eq!(r.len(), 1);
        assert_eq!(r.get_counter("x.hits").expect("registered").get(), 3);
    }

    #[test]
    fn kind_clash_keeps_original_registration() {
        let r = Registry::new();
        let c = r.counter("x.v", "events", "first wins");
        let g = r.gauge("x.v", "bytes", "clashes");
        c.inc();
        g.set(7);
        assert_eq!(r.len(), 1);
        assert!(r.get_counter("x.v").is_some());
        assert!(r.get_gauge("x.v").is_none());
    }

    #[test]
    fn samples_are_name_sorted_and_typed() {
        let r = Registry::new();
        r.histogram("b.lat", "micros", "latency").record(3);
        r.counter("a.hits", "events", "hits").inc();
        r.gauge("c.len", "bytes", "length").set(-2);
        let s = r.samples();
        let names: Vec<&str> = s.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["a.hits", "b.lat", "c.len"]);
        assert!(matches!(s[0].value, SampleValue::Counter(1)));
        assert!(matches!(&s[1].value, SampleValue::Histogram(h) if h.count == 1));
        assert!(matches!(s[2].value, SampleValue::Gauge(-2)));
    }
}
