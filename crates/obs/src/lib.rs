//! # xarch_obs — unified observability for the xarch workspace
//!
//! Dependency-free metrics and tracing layer every other crate reports
//! through: atomic [`Counter`]/[`Gauge`] and a log-bucketed latency
//! [`Histogram`] (lock-free record, p50/p90/p99/max readout) behind a
//! namespaced, register-once [`Registry`]; structured key=value [`Event`]s
//! with a level filter, a pluggable [`EventSink`] (stderr by default) and
//! a ring buffer of the last N events for post-mortem inspection; and
//! timed [`Span`] scopes that feed per-operation duration histograms.
//!
//! The design splits *recording* from *reporting*:
//!
//! * recording goes through cheap-clone handles over `Arc`'d atomics —
//!   no lock is ever taken on the hot path, so handles can live inside
//!   commit loops and query paths (`tests/concurrency.rs` races them);
//! * reporting walks the registry under a mutex and renders either
//!   Prometheus text ([`render_prometheus`]) or JSON ([`render_json`]).
//!
//! [`Obs`] bundles a registry and a tracer into the single value that
//! flows through `ArchiveBuilder::with_observability`:
//!
//! ```
//! use xarch_obs::{Level, Obs};
//!
//! let obs = Obs::new();
//! let hits = obs.registry().counter("demo.hits", "events", "demo counter");
//! let lat = obs.registry().histogram("demo.duration", "micros", "demo latency");
//! {
//!     let span = obs.span("demo.op", &lat); // records on drop
//!     hits.inc();
//!     span.end();
//! }
//! obs.event(Level::Info, "demo.done", &[("hits", hits.get().to_string())]);
//! assert!(obs.render_prometheus().contains("demo_hits 1"));
//! assert_eq!(obs.recent_events().len(), 1);
//! ```

#![warn(missing_docs)]

mod expo;
mod metrics;
mod registry;
mod trace;

pub use expo::{prometheus_name, render_json, render_prometheus};
pub use metrics::{bucket_bound, Counter, Gauge, Histogram, HistogramSnapshot, Timer, BUCKETS};
pub use registry::{MetricKind, MetricSample, Registry, SampleValue};
pub use trace::{
    Event, EventSink, Level, NullSink, Span, StderrSink, Tracer, VecSink, DEFAULT_RING_CAPACITY,
};

/// The observability bundle: one [`Registry`] plus one [`Tracer`],
/// cheaply clonable, passed to `ArchiveBuilder::with_observability` and
/// kept by the caller to render reports.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    registry: Registry,
    tracer: Tracer,
}

impl Obs {
    /// Registry plus a stderr-sink tracer forwarding `Warn` and above.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registry plus a silent tracer (ring buffer still records).
    ///
    /// This is what components embed when built *without*
    /// `.with_observability(..)`: metrics still count and recent events
    /// can still be read back, but nothing reaches the console and
    /// nothing is shared beyond the component.
    pub fn disconnected() -> Self {
        Self {
            registry: Registry::new(),
            tracer: Tracer::silent(),
        }
    }

    /// Bundle an existing registry and tracer.
    pub fn with_parts(registry: Registry, tracer: Tracer) -> Self {
        Self { registry, tracer }
    }

    /// The bundled metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The bundled event tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Start a timed scope recording into `hist` (and emitting a `Debug`
    /// event when enabled) — see [`Span`].
    pub fn span(&self, target: &'static str, hist: &Histogram) -> Span {
        Span::new(target, hist.clone(), Some(self.tracer.clone()))
    }

    /// Emit a structured event through the bundled tracer.
    pub fn event(&self, level: Level, target: &'static str, fields: &[(&'static str, String)]) {
        self.tracer.event(level, target, fields);
    }

    /// The ring buffer of recent events, oldest first.
    pub fn recent_events(&self) -> Vec<Event> {
        self.tracer.recent()
    }

    /// Prometheus text exposition of every registered metric.
    pub fn render_prometheus(&self) -> String {
        render_prometheus(&self.registry)
    }

    /// JSON exposition of every registered metric.
    pub fn render_json(&self) -> String {
        render_json(&self.registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_bundles_registry_and_tracer() {
        let obs = Obs::disconnected();
        let c = obs.registry().counter("t.hits", "events", "hits");
        c.add(2);
        let clone = obs.clone();
        assert_eq!(
            clone
                .registry()
                .get_counter("t.hits")
                .expect("shared")
                .get(),
            2,
            "clones share the registry"
        );
        obs.event(Level::Error, "t.boom", &[]);
        assert_eq!(clone.recent_events().len(), 1, "clones share the tracer");
    }

    #[test]
    fn span_feeds_histogram() {
        let obs = Obs::disconnected();
        let h = obs.registry().histogram("t.duration", "micros", "latency");
        obs.span("t.op", &h).end();
        assert_eq!(h.count(), 1);
        assert!(obs.render_prometheus().contains("t_duration_count 1"));
    }
}
