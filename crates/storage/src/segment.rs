//! The segment file: superblock + append-only block sequence, with
//! crash-safe open.
//!
//! A [`Segment`] is the durable half of the archive: every committed
//! version is one appended block (synced before the commit is
//! acknowledged), and [`Segment::open`] streams the file back through a
//! per-block callback — verifying checksums, truncating an uncommitted
//! torn tail instead of refusing to open, and holding only one block's
//! payload in memory at a time so reopening never exceeds the inner
//! backend's working set.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use xarch_compress::BlockCodec;
use xarch_core::StoreError;
use xarch_keys::KeySpec;
use xarch_obs::Level;

use crate::block::{
    self, encode_block, BlockKind, Scan, ScannedBlock, BLOCK_HEADER_LEN, BLOCK_TRAILER_LEN,
    COMMIT_MAGIC,
};
use crate::metrics::StorageMetrics;
use crate::superblock;

/// What `open()` found and did while rebuilding state from a segment file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Total committed versions re-established by the open: versions
    /// restored from a checkpoint snapshot (when one was loaded) plus
    /// versions replayed block-by-block from the journal.
    pub versions_recovered: u32,
    /// Bytes of data verified during the open: the superblock plus every
    /// scanned block. A checkpointed open skips the journal prefix the
    /// snapshot covers, so this is smaller than the file when
    /// [`RecoveryStats::checkpoint_loaded`] is set.
    pub bytes_scanned: u64,
    /// Bytes of uncommitted torn tail dropped by truncation (0 on a clean
    /// shutdown).
    pub truncated_bytes: u64,
    /// True when the open restored a checkpoint snapshot instead of
    /// replaying the whole journal — reopen cost was then proportional to
    /// the tail, not the history.
    pub checkpoint_loaded: bool,
    /// Journal blocks replayed through the merge path by this open (the
    /// tail after the checkpoint, or every block when none was loaded).
    /// Checkpoint blocks themselves are not replay work and are excluded.
    pub tail_blocks_replayed: u32,
}

impl RecoveryStats {
    /// True when the file ended in a torn write that open() cleaned up.
    pub fn recovered_torn_tail(&self) -> bool {
        self.truncated_bytes > 0
    }
}

/// Where a checkpointed open resumes: the verified checkpoint block and
/// the version count its snapshot restored. Produced by the durable
/// layer after [`scan_checkpoints`] + a successful state restore;
/// [`Segment::open_observed_from`] re-verifies the block under the
/// exclusive lock before trusting it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeFrom {
    /// File offset of the restored checkpoint block's header.
    pub checkpoint_offset: u64,
    /// Versions the restored snapshot covers; the tail scan's sequence
    /// check continues from here.
    pub versions: u32,
}

/// A checkpoint candidate found by [`scan_checkpoints`]' header-only
/// pre-scan. Unverified: the CRC is only checked when the candidate is
/// actually read (see [`scan_block_at`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointRef {
    /// File offset of the block header.
    pub offset: u64,
    /// The version count the header claims the snapshot covers.
    pub covered: u32,
    /// File offset one past the block's trailer — where tail replay
    /// resumes after a successful restore.
    pub end: u64,
}

/// Header-only forward scan listing every checkpoint block candidate in
/// the segment at `path`, oldest first. Reads 22 bytes per block and
/// seeks over payloads, so the cost is proportional to the block *count*,
/// not the file size. Advisory: headers are unverified and the scan stops
/// quietly at the first structural anomaly (the authoritative
/// verification happens in [`Segment::open_observed_from`]); an
/// unreadable or checkpoint-free segment yields an empty list.
pub fn scan_checkpoints(path: &Path) -> Result<Vec<CheckpointRef>, StoreError> {
    let mut file = File::open(path)?;
    let len = file.metadata()?.len();
    let mut out = Vec::new();
    // superblock fixed prefix → spec length → first block offset
    if len < superblock::FIXED_LEN as u64 {
        return Ok(out);
    }
    let mut fixed = [0u8; superblock::FIXED_LEN];
    file.read_exact(&mut fixed)?;
    let Some(spec_len) = superblock::declared_spec_len(&fixed) else {
        return Ok(out);
    };
    if spec_len > superblock::MAX_SPEC_LEN {
        return Ok(out);
    }
    let mut offset = (superblock::FIXED_LEN as u64)
        .saturating_add(spec_len)
        .saturating_add(4);
    let min_block = (BLOCK_HEADER_LEN + BLOCK_TRAILER_LEN) as u64;
    let mut header = [0u8; BLOCK_HEADER_LEN];
    file.seek(SeekFrom::Start(offset))?;
    while offset.saturating_add(min_block) <= len {
        file.read_exact(&mut header)?;
        let Some(stored_len) = block::declared_payload_len(&header) else {
            break;
        };
        if stored_len > block::MAX_PAYLOAD {
            break;
        }
        let end = offset.saturating_add(min_block).saturating_add(stored_len);
        if end > len {
            break;
        }
        if header.first() == Some(&BlockKind::Checkpoint.kind_byte()) {
            let Some(covered) = crate::bytes::le_u32(&header, 2) else {
                break;
            };
            out.push(CheckpointRef {
                offset,
                covered,
                end,
            });
        }
        file.seek(SeekFrom::Start(end))?;
        offset = end;
    }
    Ok(out)
}

/// Reads and fully verifies the single block at `offset` in the segment
/// at `path`, classifying failures exactly like the sequential scan (torn
/// tail vs interior corruption). I/O failures are `Err`; content
/// classification is the returned [`Scan`].
pub fn scan_block_at(path: &Path, offset: u64) -> Result<Scan, StoreError> {
    let mut file = File::open(path)?;
    let len = file.metadata()?.len();
    let eof_commit_word = if len >= offset.saturating_add(4) && len >= 4 {
        let mut last = [0u8; 4];
        file.seek(SeekFrom::End(-4))?;
        file.read_exact(&mut last)?;
        last == COMMIT_MAGIC.to_le_bytes()
    } else {
        false
    };
    if len.saturating_sub(offset) < BLOCK_HEADER_LEN as u64 {
        return Ok(Scan::TornTail);
    }
    let mut header = [0u8; BLOCK_HEADER_LEN];
    file.seek(SeekFrom::Start(offset))?;
    file.read_exact(&mut header)?;
    let Some(declared) = block::declared_payload_len(&header) else {
        return Ok(Scan::TornTail);
    };
    if declared > block::MAX_PAYLOAD {
        return Ok(Scan::Corrupt(StoreError::Corrupt {
            offset,
            reason: format!("implausible payload length {declared} in block header"),
        }));
    }
    let needed = declared + BLOCK_TRAILER_LEN as u64;
    let available = needed.min(len.saturating_sub(offset + BLOCK_HEADER_LEN as u64));
    let Ok(take) = usize::try_from(available) else {
        return Ok(Scan::Corrupt(StoreError::Corrupt {
            offset,
            reason: "block span exceeds the address space".into(),
        }));
    };
    let mut body = vec![0u8; take];
    file.read_exact(&mut body)?;
    let end = offset + BLOCK_HEADER_LEN as u64 + needed;
    let bytes_after_end = len.saturating_sub(end);
    Ok(block::scan_block_parts(
        &header,
        body,
        offset,
        bytes_after_end,
        eof_commit_word,
    ))
}

/// An open segment file positioned for appending.
#[derive(Debug)]
pub struct Segment {
    file: File,
    path: PathBuf,
    len: u64,
    next_version: u32,
    sync: bool,
    /// Canonical `segment.*` / `recovery.*` metric handles — detached
    /// (per-handle) by default, registry-backed when the segment was
    /// opened observed. Group commit's measurable effect lives here: one
    /// block and one fsync per *batch* instead of per version.
    metrics: StorageMetrics,
}

fn backend(err: impl Into<String>) -> StoreError {
    StoreError::Backend(err.into())
}

/// Takes the OS advisory lock that makes the segment single-writer: two
/// handles appending to one journal would overwrite each other's
/// acknowledged commits. The lock dies with the file handle (and with the
/// process, so a crash never leaves a stale lock behind).
fn lock_exclusive(file: &File, path: &Path) -> Result<(), StoreError> {
    use std::fs::TryLockError;
    match file.try_lock() {
        Ok(()) => Ok(()),
        Err(TryLockError::WouldBlock) => Err(backend(format!(
            "segment {} is already open in another archive handle \
             (concurrent writers would corrupt the journal)",
            path.display()
        ))),
        Err(TryLockError::Error(e)) => Err(StoreError::Io(e)),
    }
}

impl Segment {
    /// Creates (or truncates) a segment file holding only the superblock.
    pub fn create(path: &Path, spec: &KeySpec, sync: bool) -> Result<Segment, StoreError> {
        Self::create_observed(path, spec, sync, StorageMetrics::detached())
    }

    /// [`Segment::create`] recording into the given metric handles.
    // not .truncate(true): truncation must happen *after* the lock (below)
    #[allow(clippy::suspicious_open_options)]
    pub fn create_observed(
        path: &Path,
        spec: &KeySpec,
        sync: bool,
        metrics: StorageMetrics,
    ) -> Result<Segment, StoreError> {
        // take the lock before truncating, so losing a create race cannot
        // wipe a segment another handle is actively appending to
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .open(path)?;
        lock_exclusive(&file, path)?;
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        let sb = superblock::encode(spec)?;
        file.write_all(&sb)?;
        if sync {
            file.sync_data()?;
        }
        metrics.journal_len.set_u64(sb.len() as u64);
        metrics.event(
            Level::Info,
            "segment.create",
            &[("path", path.display().to_string())],
        );
        Ok(Segment {
            file,
            path: path.to_owned(),
            len: sb.len() as u64,
            next_version: 1,
            sync,
            metrics,
        })
    }

    /// Opens an existing segment file: verifies the superblock against
    /// `spec`, then scans, checksums, and hands each committed block to
    /// `on_block` in order (truncating a torn tail first). Replay happens
    /// inside the callback so only one block is ever materialized. The
    /// callback returns how many versions the block committed — 1 for
    /// plain and empty blocks, the batch size for group-commit blocks —
    /// which drives the sequence check and the next append's version.
    pub fn open(
        path: &Path,
        spec: &KeySpec,
        sync: bool,
        on_block: impl FnMut(ScannedBlock) -> Result<u32, StoreError>,
    ) -> Result<(Segment, RecoveryStats), StoreError> {
        Self::open_observed(path, spec, sync, StorageMetrics::detached(), on_block)
    }

    /// [`Segment::open`] recording recovery outcomes (torn-tail
    /// truncations, corrupt blocks, replay duration) into the given
    /// metric handles and emitting structured recovery events.
    pub fn open_observed(
        path: &Path,
        spec: &KeySpec,
        sync: bool,
        metrics: StorageMetrics,
        on_block: impl FnMut(ScannedBlock) -> Result<u32, StoreError>,
    ) -> Result<(Segment, RecoveryStats), StoreError> {
        Self::open_observed_from(path, spec, sync, metrics, None, on_block)
    }

    /// [`Segment::open_observed`] with an optional checkpoint resume
    /// point: when `resume` is set, the block at its offset is re-verified
    /// under the exclusive lock (it must be a committed checkpoint
    /// covering exactly `resume.versions`), the journal prefix it covers
    /// is skipped, and only the tail after it is scanned and replayed —
    /// reopen cost becomes proportional to the tail, not the history.
    pub fn open_observed_from(
        path: &Path,
        spec: &KeySpec,
        sync: bool,
        metrics: StorageMetrics,
        resume: Option<ResumeFrom>,
        mut on_block: impl FnMut(ScannedBlock) -> Result<u32, StoreError>,
    ) -> Result<(Segment, RecoveryStats), StoreError> {
        // records replay wall time on every exit, clean or failed
        let _replay = metrics.replay_duration.start_timer();
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        lock_exclusive(&file, path)?;
        let file_len = file.metadata()?.len();

        // superblock: fixed prefix first, then the spec + its checksum
        let prefix_len = usize::try_from(file_len.min(superblock::FIXED_LEN as u64))
            .unwrap_or(superblock::FIXED_LEN);
        let mut sb = vec![0u8; prefix_len];
        file.read_exact(&mut sb)?;
        if sb.len() == superblock::FIXED_LEN {
            let Some(spec_len) = superblock::declared_spec_len(&sb) else {
                return Err(StoreError::Corrupt {
                    offset: 12,
                    reason: "superblock fixed prefix truncated".into(),
                });
            };
            if spec_len > superblock::MAX_SPEC_LEN {
                return Err(StoreError::Corrupt {
                    offset: 12,
                    reason: format!("implausible key spec length {spec_len} in superblock"),
                });
            }
            let rest_len = spec_len
                .saturating_add(4)
                .min(file_len.saturating_sub(sb.len() as u64));
            let rest = usize::try_from(rest_len).map_err(|_| StoreError::Corrupt {
                offset: 12,
                reason: "superblock spec length exceeds the address space".into(),
            })?;
            let mut tail = vec![0u8; rest];
            file.read_exact(&mut tail)?;
            sb.extend_from_slice(&tail);
        }
        let (stored_spec, first_block) = superblock::decode(&sb)?;
        if &stored_spec != spec {
            return Err(backend(format!(
                "key spec mismatch: segment {} was created under a different key specification \
                 (stored {} keys, requested {})",
                path.display(),
                stored_spec.len(),
                spec.len(),
            )));
        }

        // whether the file's final four bytes are a commit word — the
        // signal that distinguishes a bit-rotted length field (which must
        // fail loudly) from a genuine torn append (which cannot leave a
        // later block's commit word at end of file)
        let eof_commit_word = if file_len >= first_block + 4 {
            let mut last = [0u8; 4];
            file.seek(SeekFrom::End(-4))?;
            file.read_exact(&mut last)?;
            file.seek(SeekFrom::Start(first_block))?;
            last == COMMIT_MAGIC.to_le_bytes()
        } else {
            false
        };

        // blocks, one at a time — only the current payload is in memory,
        // so reopening stays within the inner backend's working set
        let mut versions = 0u32;
        let mut offset = first_block;
        let mut stats = RecoveryStats::default();
        let mut len = file_len;
        if let Some(r) = resume {
            // the resume point came from an unlocked pre-scan; re-verify
            // under the exclusive lock that it is still a committed
            // checkpoint covering exactly what the snapshot restored
            let end = match scan_block_at(path, r.checkpoint_offset)? {
                Scan::Block(b)
                    if b.header.kind == BlockKind::Checkpoint && b.header.version == r.versions =>
                {
                    r.checkpoint_offset
                        + (b.payload.len() + BLOCK_HEADER_LEN + BLOCK_TRAILER_LEN) as u64
                }
                _ => {
                    metrics.corrupt_blocks.inc();
                    return Err(StoreError::Corrupt {
                        offset: r.checkpoint_offset,
                        reason: "checkpoint resume point failed re-verification".into(),
                    });
                }
            };
            versions = r.versions;
            offset = end.min(len);
            stats.checkpoint_loaded = true;
            metrics.checkpoints_loaded.inc();
            metrics.event(
                Level::Info,
                "recovery.checkpoint_loaded",
                &[
                    ("offset", r.checkpoint_offset.to_string()),
                    ("covered", r.versions.to_string()),
                ],
            );
            file.seek(SeekFrom::Start(offset))?;
        }
        let resumed_at = offset;
        let mut header = [0u8; BLOCK_HEADER_LEN];
        while offset < len {
            // Some(end) when the bytes at `offset` are identifiably a
            // *complete* checkpoint block (kind byte, commit word at its
            // declared end): a corrupt one can then be skipped instead of
            // failing the open — checkpoints are pure redundancy
            let mut checkpoint_span_end: Option<u64> = None;
            let scan = if len - offset < BLOCK_HEADER_LEN as u64 {
                Scan::TornTail
            } else {
                file.read_exact(&mut header)?;
                match block::declared_payload_len(&header) {
                    // unreachable with a full header buffer, but decode
                    // paths are total by policy
                    None => Scan::TornTail,
                    // an implausible length is rejected before any allocation
                    Some(declared) if declared > block::MAX_PAYLOAD => {
                        Scan::Corrupt(StoreError::Corrupt {
                            offset,
                            reason: format!(
                                "implausible payload length {declared} in block header"
                            ),
                        })
                    }
                    Some(declared) => {
                        let needed = declared + BLOCK_TRAILER_LEN as u64;
                        let available = needed.min(len - offset - BLOCK_HEADER_LEN as u64);
                        match usize::try_from(available) {
                            Err(_) => Scan::Corrupt(StoreError::Corrupt {
                                offset,
                                reason: "block span exceeds the address space".into(),
                            }),
                            Ok(take) => {
                                let mut body = vec![0u8; take];
                                file.read_exact(&mut body)?;
                                let end = offset + BLOCK_HEADER_LEN as u64 + needed;
                                let bytes_after_end = len.saturating_sub(end);
                                let commit_ok = available == needed
                                    && body.len().checked_sub(4).and_then(|s| body.get(s..))
                                        == Some(COMMIT_MAGIC.to_le_bytes().as_slice());
                                if commit_ok
                                    && header.first() == Some(&BlockKind::Checkpoint.kind_byte())
                                {
                                    checkpoint_span_end = Some(end);
                                }
                                block::scan_block_parts(
                                    &header,
                                    body,
                                    offset,
                                    bytes_after_end,
                                    eof_commit_word,
                                )
                            }
                        }
                    }
                }
            };
            match scan {
                Scan::Block(b) if b.header.kind == BlockKind::Checkpoint => {
                    // checkpoints commit nothing: the header records how
                    // many versions the snapshot covers, which must agree
                    // with the journal so far
                    if b.header.version != versions {
                        metrics.corrupt_blocks.inc();
                        metrics.event(
                            Level::Error,
                            "recovery.corrupt_block",
                            &[
                                ("offset", offset.to_string()),
                                ("reason", "checkpoint coverage skew".to_string()),
                            ],
                        );
                        return Err(StoreError::Corrupt {
                            offset,
                            reason: format!(
                                "checkpoint claims to cover version {}, journal holds {versions}",
                                b.header.version
                            ),
                        });
                    }
                    offset += (b.payload.len() + BLOCK_HEADER_LEN + BLOCK_TRAILER_LEN) as u64;
                    let committed = on_block(b)?;
                    if committed != 0 {
                        return Err(StoreError::Corrupt {
                            offset,
                            reason: "checkpoint block claimed to commit versions".into(),
                        });
                    }
                }
                Scan::Block(b) => {
                    let expected = versions + 1;
                    if b.header.version != expected {
                        metrics.corrupt_blocks.inc();
                        metrics.event(
                            Level::Error,
                            "recovery.corrupt_block",
                            &[
                                ("offset", offset.to_string()),
                                ("reason", "sequence broken".to_string()),
                            ],
                        );
                        return Err(StoreError::Corrupt {
                            offset,
                            reason: format!(
                                "block sequence broken: expected version {expected}, found {}",
                                b.header.version
                            ),
                        });
                    }
                    offset += (b.payload.len() + BLOCK_HEADER_LEN + BLOCK_TRAILER_LEN) as u64;
                    let committed = on_block(b)?;
                    if committed == 0 {
                        return Err(StoreError::Corrupt {
                            offset,
                            reason: "block committed zero versions".into(),
                        });
                    }
                    versions = expected + (committed - 1);
                    stats.tail_blocks_replayed = stats.tail_blocks_replayed.saturating_add(1);
                }
                Scan::Corrupt(e) if checkpoint_span_end.is_some() => {
                    // a rotted checkpoint is loud but never fatal: every
                    // bit of its state is rederivable from the journal, so
                    // record it and step over its (commit-word-delimited)
                    // span to the blocks behind it
                    let Some(end) = checkpoint_span_end else {
                        return Err(e);
                    };
                    metrics.corrupt_blocks.inc();
                    metrics.checkpoints_skipped.inc();
                    metrics.event(
                        Level::Warn,
                        "recovery.checkpoint_skipped",
                        &[("offset", offset.to_string()), ("reason", e.to_string())],
                    );
                    offset = end;
                }
                Scan::TornTail => {
                    stats.truncated_bytes = len - offset;
                    file.set_len(offset)?;
                    if sync {
                        file.sync_data()?;
                    }
                    len = offset;
                    metrics.torn_tail_truncations.inc();
                    metrics.event(
                        Level::Warn,
                        "recovery.torn_tail",
                        &[
                            ("offset", offset.to_string()),
                            ("dropped_bytes", stats.truncated_bytes.to_string()),
                        ],
                    );
                }
                Scan::Corrupt(e) => {
                    metrics.corrupt_blocks.inc();
                    metrics.event(
                        Level::Error,
                        "recovery.corrupt_block",
                        &[("offset", offset.to_string()), ("reason", e.to_string())],
                    );
                    return Err(e);
                }
            }
        }
        file.seek(SeekFrom::End(0))?;
        stats.versions_recovered = versions;
        // a checkpointed open verified the superblock and the tail only
        stats.bytes_scanned = first_block + len.saturating_sub(resumed_at);
        let restored = resume.map_or(0, |r| r.versions);
        metrics
            .versions_replayed
            .add(u64::from(versions.saturating_sub(restored)));
        metrics.journal_len.set_u64(len);
        metrics.event(
            Level::Info,
            "segment.open",
            &[
                ("versions", versions.to_string()),
                ("bytes", len.to_string()),
                ("truncated_bytes", stats.truncated_bytes.to_string()),
                ("checkpoint_loaded", stats.checkpoint_loaded.to_string()),
            ],
        );
        Ok((
            Segment {
                file,
                path: path.to_owned(),
                len,
                next_version: versions + 1,
                sync,
                metrics,
            },
            stats,
        ))
    }

    /// Appends one committed block for version `version` and (by default)
    /// syncs it to disk. `raw_len` is the payload's uncompressed size;
    /// `payload` is already encoded per `codec`.
    pub fn append(
        &mut self,
        kind: BlockKind,
        codec: BlockCodec,
        version: u32,
        raw_len: u64,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        debug_assert!(
            !matches!(kind, BlockKind::Batch),
            "batch blocks go through append_batch"
        );
        self.append_block(kind, codec, version, 1, raw_len, payload)
    }

    /// Group commit: appends ONE block covering `count` consecutive
    /// versions starting at `first_version`, with a single write and a
    /// single (optional) fsync — the whole batch becomes durable, or none
    /// of it does.
    pub fn append_batch(
        &mut self,
        codec: BlockCodec,
        first_version: u32,
        count: u32,
        raw_len: u64,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        if count == 0 {
            return Err(backend("a batch block must commit at least one version"));
        }
        self.append_block(
            BlockKind::Batch,
            codec,
            first_version,
            count,
            raw_len,
            payload,
        )
    }

    /// Appends one checkpoint block whose snapshot covers every version
    /// committed so far (the header records `next_version - 1`).
    /// Checkpoints commit no versions, so the sequence cursor does not
    /// advance. Returns the file offset of the appended block's header,
    /// which the durable layer back-chains into the *next* checkpoint's
    /// payload.
    pub fn append_checkpoint(
        &mut self,
        codec: BlockCodec,
        raw_len: u64,
        payload: &[u8],
    ) -> Result<u64, StoreError> {
        if payload.len() as u64 > block::MAX_PAYLOAD {
            return Err(backend(format!(
                "checkpoint payload of {} bytes exceeds the {} byte block limit",
                payload.len(),
                block::MAX_PAYLOAD
            )));
        }
        let covered = self.next_version.saturating_sub(1);
        let offset = self.len;
        let block = encode_block(BlockKind::Checkpoint, codec, covered, raw_len, payload);
        self.file.write_all(&block)?;
        if self.sync {
            self.file.sync_data()?;
            self.metrics.fsyncs.inc();
        }
        self.len += block.len() as u64;
        self.metrics.checkpoints_written.inc();
        self.metrics.checkpoint_bytes.add(block.len() as u64);
        self.metrics.journal_len.set_u64(self.len);
        self.metrics.event(
            Level::Info,
            "segment.checkpoint",
            &[
                ("covered", covered.to_string()),
                ("bytes", block.len().to_string()),
                ("offset", offset.to_string()),
            ],
        );
        Ok(offset)
    }

    fn append_block(
        &mut self,
        kind: BlockKind,
        codec: BlockCodec,
        version: u32,
        count: u32,
        raw_len: u64,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        if version != self.next_version {
            return Err(backend(format!(
                "out-of-order append: segment expects version {}, got {version}",
                self.next_version
            )));
        }
        // the bound readers rely on: a complete header never declares an
        // implausible length, so one on disk is provably bit rot
        if payload.len() as u64 > block::MAX_PAYLOAD {
            return Err(backend(format!(
                "payload of {} bytes exceeds the {} byte block limit",
                payload.len(),
                block::MAX_PAYLOAD
            )));
        }
        let block = encode_block(kind, codec, version, raw_len, payload);
        self.file.write_all(&block)?;
        if self.sync {
            self.file.sync_data()?;
            self.metrics.fsyncs.inc();
        }
        self.len += block.len() as u64;
        self.next_version += count;
        self.metrics.blocks_written.inc();
        self.metrics.bytes_written.add(block.len() as u64);
        self.metrics.journal_len.set_u64(self.len);
        Ok(())
    }

    /// The segment file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current file length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// The version number the next append must carry.
    pub fn next_version(&self) -> u32 {
        self.next_version
    }

    /// Blocks appended through this handle (through this *registry* when
    /// the segment was opened observed against a shared one).
    pub fn blocks_appended(&self) -> u64 {
        self.metrics.blocks_written.get()
    }

    /// Commit fsyncs issued through this handle (through this *registry*
    /// when the segment was opened observed against a shared one).
    pub fn syncs_issued(&self) -> u64 {
        self.metrics.fsyncs.get()
    }

    /// The metric handles this segment records into.
    pub fn metrics(&self) -> &StorageMetrics {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch_path;

    fn spec() -> KeySpec {
        KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))").unwrap()
    }

    #[test]
    fn create_append_reopen() {
        let path = scratch_path("segment-basic");
        let mut seg = Segment::create(&path, &spec(), true).unwrap();
        seg.append(BlockKind::Version, BlockCodec::Raw, 1, 3, b"abc")
            .unwrap();
        seg.append(BlockKind::Empty, BlockCodec::Raw, 2, 0, b"")
            .unwrap();
        drop(seg);
        let mut blocks = Vec::new();
        let (seg, stats) = Segment::open(&path, &spec(), true, |b| {
            blocks.push(b);
            Ok(1)
        })
        .unwrap();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].payload, b"abc");
        assert_eq!(blocks[1].header.kind, BlockKind::Empty);
        assert_eq!(stats.versions_recovered, 2);
        assert!(!stats.recovered_torn_tail());
        assert_eq!(seg.next_version(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn batch_block_advances_the_sequence_by_its_count() {
        let path = scratch_path("segment-batch");
        let mut seg = Segment::create(&path, &spec(), true).unwrap();
        seg.append(BlockKind::Version, BlockCodec::Raw, 1, 3, b"abc")
            .unwrap();
        // one block commits versions 2..=4
        seg.append_batch(BlockCodec::Raw, 2, 3, 5, b"batch")
            .unwrap();
        assert_eq!(seg.next_version(), 5);
        seg.append(BlockKind::Empty, BlockCodec::Raw, 5, 0, b"")
            .unwrap();
        drop(seg);
        let mut kinds = Vec::new();
        let (seg, stats) = Segment::open(&path, &spec(), true, |b| {
            kinds.push(b.header.kind);
            Ok(if b.header.kind == BlockKind::Batch {
                3
            } else {
                1
            })
        })
        .unwrap();
        assert_eq!(
            kinds,
            vec![BlockKind::Version, BlockKind::Batch, BlockKind::Empty]
        );
        assert_eq!(stats.versions_recovered, 5);
        assert_eq!(seg.next_version(), 6);
        // a batch may not claim zero versions
        let mut seg = seg;
        assert!(seg.append_batch(BlockCodec::Raw, 6, 0, 0, b"").is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_survivors_kept() {
        let path = scratch_path("segment-torn");
        let mut seg = Segment::create(&path, &spec(), true).unwrap();
        seg.append(BlockKind::Version, BlockCodec::Raw, 1, 3, b"abc")
            .unwrap();
        let committed = seg.len_bytes();
        drop(seg);
        // simulate a crash mid-append: a partial second block
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[1, 0, 2, 0, 0, 0, 9, 9]).unwrap();
        drop(f);
        let mut blocks = Vec::new();
        let (seg, stats) = Segment::open(&path, &spec(), true, |b| {
            blocks.push(b);
            Ok(1)
        })
        .unwrap();
        assert_eq!(blocks.len(), 1);
        assert_eq!(stats.truncated_bytes, 8);
        assert!(stats.recovered_torn_tail());
        assert_eq!(seg.len_bytes(), committed);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), committed);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn spec_mismatch_is_rejected() {
        let path = scratch_path("segment-spec");
        Segment::create(&path, &spec(), true).unwrap();
        let other = KeySpec::parse("(/, (other, {}))").unwrap();
        let err = Segment::open(&path, &other, true, |_| Ok(1))
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, StoreError::Backend(_)), "{err}");
        assert!(err.to_string().contains("key spec mismatch"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_order_append_is_rejected() {
        let path = scratch_path("segment-order");
        let mut seg = Segment::create(&path, &spec(), true).unwrap();
        assert!(seg
            .append(BlockKind::Version, BlockCodec::Raw, 5, 0, b"")
            .is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
