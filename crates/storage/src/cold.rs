//! [`ColdArchive`]: read-only queries straight off the memory-mapped
//! segment file.
//!
//! A [`DurableArchive`](crate::DurableArchive) materializes the whole
//! archive in its inner backend before it can answer anything — the right
//! trade for a writer, but wasteful for a one-off query against a large,
//! cold segment. `ColdArchive` takes the other corner of the design
//! space: it memory-maps the file, builds a tiny *per-block version
//! index* from a header-only walk (22 bytes per block; payloads are never
//! touched), and then serves [`StoreReader`] queries by decoding exactly
//! the blocks they need. A point `retrieve`/`as_of` checksums and decodes
//! one block; the rest of the file stays untouched OS page cache at most.
//!
//! Cold readers hold a *shared* OS lock, so any number may coexist — but
//! a live writer (which holds the exclusive lock) blocks cold opens and
//! vice versa, keeping the map stable for its whole lifetime.
//!
//! Integrity policy matches the format's split (see `docs/FORMAT.md`
//! §Recovery): a torn tail at open is quietly ignored (those bytes were
//! never acknowledged), while any damage to a committed block — at open
//! where the header walk trips over it, or at query time when the block's
//! CRC fails — surfaces as a positioned
//! [`StoreError::Corrupt`]. A cold
//! reader never truncates or repairs: it has no write permission on the
//! segment at all.

use std::fs::File;
use std::io::Write;
use std::path::Path;

use xarch_compress::BlockCodec;
use xarch_core::{query, KeyQuery, StoreError, StoreReader, StoreStats, TimeSet};
use xarch_keys::KeySpec;
use xarch_obs::{Level, Obs};
use xarch_xml::Document;

use crate::block::{
    self, BlockKind, Scan, ScannedBlock, BLOCK_HEADER_LEN, BLOCK_TRAILER_LEN, MAX_PAYLOAD,
};
use crate::metrics::ColdMetrics;
use crate::mmap::MappedFile;
use crate::payload::{batch_bytes_to_docs, bytes_to_doc};
use crate::superblock;

/// One committed data block in the version index: which versions it
/// holds and where it sits in the file. Checkpoint blocks are not
/// indexed — they duplicate journal state the cold reader re-derives
/// per query anyway.
#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    /// File offset of the block header.
    offset: u64,
    kind: BlockKind,
    /// First version the block commits.
    first_version: u32,
    /// Versions the block commits (1 except for batch blocks).
    count: u32,
}

/// A read-only archive view served directly off the mmap'd segment file.
///
/// Built by [`ColdArchive::open`]; answers every [`StoreReader`] query
/// (the temporal ones through the trait's whole-retrieve defaults) while
/// decoding only the blocks each query touches.
///
/// ```no_run
/// use xarch_core::StoreReader;
/// use xarch_storage::ColdArchive;
/// let cold = ColdArchive::open("archive.seg")?;
/// let doc = cold.retrieve(cold.latest())?;
/// # Ok::<(), xarch_core::StoreError>(())
/// ```
#[derive(Debug)]
pub struct ColdArchive {
    /// Holds the shared OS lock (and the mapping's backing fd) open for
    /// the reader's whole lifetime.
    _file: File,
    map: MappedFile,
    spec: KeySpec,
    index: Vec<IndexEntry>,
    latest: u32,
    metrics: ColdMetrics,
}

fn corrupt(offset: u64, reason: impl Into<String>) -> StoreError {
    StoreError::Corrupt {
        offset,
        reason: reason.into(),
    }
}

impl ColdArchive {
    /// Opens the segment at `path` read-only under a shared OS lock,
    /// maps it, and indexes its blocks (headers only — no payload is
    /// read). Fails if a writer currently holds the segment, if the
    /// superblock does not verify, or if the header walk trips over
    /// interior corruption; a torn tail is quietly excluded.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_impl(path.as_ref(), ColdMetrics::detached())
    }

    /// [`ColdArchive::open`] reporting through `obs`: query work lands in
    /// the registry under the canonical `cold.*` names.
    pub fn open_observed(path: impl AsRef<Path>, obs: &Obs) -> Result<Self, StoreError> {
        Self::open_impl(path.as_ref(), ColdMetrics::registered(obs))
    }

    fn open_impl(path: &Path, metrics: ColdMetrics) -> Result<Self, StoreError> {
        use std::fs::TryLockError;
        let file = File::open(path)?;
        match file.try_lock_shared() {
            Ok(()) => {}
            Err(TryLockError::WouldBlock) => {
                return Err(StoreError::Backend(format!(
                    "segment {} is open for writing (cold readers wait for the writer to close)",
                    path.display()
                )));
            }
            Err(TryLockError::Error(e)) => return Err(StoreError::Io(e)),
        }
        let map = MappedFile::map(&file)?;
        let bytes = map.as_slice();
        let (spec, first_block) = superblock::decode(bytes)?;
        let (index, latest, decoded) = build_index(bytes, first_block)?;
        metrics.mapped_bytes.set_u64(bytes.len() as u64);
        if let Some(span) = decoded {
            metrics.blocks_decoded.inc();
            metrics.bytes_decoded.add(span);
        }
        metrics.event(
            Level::Info,
            "cold.open",
            &[
                ("path", path.display().to_string()),
                ("mapped_bytes", bytes.len().to_string()),
                ("blocks", index.len().to_string()),
                ("versions", latest.to_string()),
            ],
        );
        Ok(Self {
            _file: file,
            map,
            spec,
            index,
            latest,
            metrics,
        })
    }

    /// Bytes of segment file the reader has mapped.
    pub fn mapped_bytes(&self) -> u64 {
        self.map.len() as u64
    }

    /// True when the bytes are served by a real memory map rather than
    /// the buffered fallback.
    pub fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    /// Stored block bytes checksummed and decoded so far on behalf of
    /// queries (this handle's `cold.bytes_decoded` counter). A point
    /// query moves this by one block span, not by the file size.
    pub fn bytes_decoded(&self) -> u64 {
        self.metrics.bytes_decoded.get()
    }

    /// The index entry holding version `v`, if `v` is a committed,
    /// non-empty-or-otherwise version number.
    fn entry_for(&self, v: u32) -> Option<IndexEntry> {
        if v == 0 || v > self.latest {
            return None;
        }
        let pos = self.index.partition_point(|e| e.first_version <= v);
        let e = *self.index.get(pos.checked_sub(1)?)?;
        (v < e.first_version.saturating_add(e.count)).then_some(e)
    }

    /// Checksums and decodes the single block at `entry`, returning the
    /// *uncompressed* payload.
    fn load_block(&self, entry: IndexEntry) -> Result<Vec<u8>, StoreError> {
        let bytes = self.map.as_slice();
        let scanned = match block::scan_block(bytes, entry.offset) {
            Scan::Block(b) => b,
            Scan::Corrupt(e) => {
                self.metrics.event(
                    Level::Error,
                    "cold.corrupt_block",
                    &[
                        ("offset", entry.offset.to_string()),
                        ("reason", e.to_string()),
                    ],
                );
                return Err(e);
            }
            // the index only holds blocks whose full span was present at
            // open, and the shared lock bars truncation while we live
            Scan::TornTail => {
                return Err(corrupt(
                    entry.offset,
                    "indexed block vanished from the mapped segment",
                ));
            }
        };
        let raw = decode_payload(&scanned)?;
        self.metrics.blocks_decoded.inc();
        self.metrics
            .bytes_decoded
            .add(block_span(scanned.header.stored_len));
        Ok(raw)
    }

    /// Decodes the documents of one data block: `None` per empty version,
    /// `Some(doc)` otherwise, in version order starting at
    /// `entry.first_version`.
    fn docs_in(&self, entry: IndexEntry) -> Result<Vec<Option<Document>>, StoreError> {
        match entry.kind {
            BlockKind::Empty => Ok(vec![None]),
            BlockKind::Version => {
                let raw = self.load_block(entry)?;
                let doc = bytes_to_doc(&raw).map_err(|e| stream_err(entry.offset, e))?;
                Ok(vec![Some(doc)])
            }
            BlockKind::Batch => {
                let raw = self.load_block(entry)?;
                let docs = batch_bytes_to_docs(&raw).map_err(|e| stream_err(entry.offset, e))?;
                if docs.len() as u64 != u64::from(entry.count) {
                    return Err(corrupt(
                        entry.offset,
                        format!(
                            "batch block holds {} versions, the index expected {}",
                            docs.len(),
                            entry.count
                        ),
                    ));
                }
                Ok(docs.into_iter().map(Some).collect())
            }
            BlockKind::Checkpoint => Err(corrupt(
                entry.offset,
                "checkpoint block reached the version index",
            )),
        }
    }
}

/// Total file span of a block with the given stored payload size.
fn block_span(stored_len: u64) -> u64 {
    stored_len + (BLOCK_HEADER_LEN + BLOCK_TRAILER_LEN) as u64
}

/// Positions an event-stream decode failure at the block that held it.
fn stream_err(offset: u64, e: xarch_extmem::StreamError) -> StoreError {
    let reason = match e.offset {
        Some(p) => format!("{} (byte {p} of the decoded payload)", e.reason),
        None => e.reason,
    };
    StoreError::Corrupt { offset, reason }
}

/// Uncompresses a verified block's payload and checks the declared raw
/// length.
fn decode_payload(b: &ScannedBlock) -> Result<Vec<u8>, StoreError> {
    let raw = match b.header.codec {
        BlockCodec::Raw => b.payload.clone(),
        codec => codec.decode(&b.payload).ok_or_else(|| {
            corrupt(
                b.offset + BLOCK_HEADER_LEN as u64,
                "block payload failed to decompress",
            )
        })?,
    };
    if raw.len() as u64 != b.header.raw_len {
        return Err(corrupt(
            b.offset,
            format!(
                "decompressed payload is {} bytes, header says {}",
                raw.len(),
                b.header.raw_len
            ),
        ));
    }
    Ok(raw)
}

/// Walks block headers (payloads untouched) building the version index.
/// Returns the data-block entries, the latest committed version, and —
/// when the final data block was a batch whose count had to be learned by
/// decoding it — the byte span that decode charged.
#[allow(clippy::type_complexity)]
fn build_index(
    bytes: &[u8],
    first_block: u64,
) -> Result<(Vec<IndexEntry>, u32, Option<u64>), StoreError> {
    struct RawEntry {
        offset: u64,
        kind: BlockKind,
        version: u32,
    }
    let len = bytes.len() as u64;
    let min_block = (BLOCK_HEADER_LEN + BLOCK_TRAILER_LEN) as u64;
    let mut raw: Vec<RawEntry> = Vec::new();
    let mut offset = first_block;
    // classify whatever made the walk stop: torn tails are quietly
    // excluded (those bytes were never acknowledged), anything else is
    // loud — scan_block applies the format's full torn-vs-rot rules
    let classify_stop = |offset: u64| -> Result<(), StoreError> {
        match block::scan_block(bytes, offset) {
            Scan::TornTail => Ok(()),
            Scan::Corrupt(e) => Err(e),
            Scan::Block(_) => Err(corrupt(
                offset,
                "header walk stopped at a block that verifies — internal inconsistency",
            )),
        }
    };
    while offset < len {
        if len - offset < min_block {
            classify_stop(offset)?;
            break;
        }
        let header = bytes
            .get(
                usize::try_from(offset)
                    .map_err(|_| corrupt(offset, "block offset exceeds the address space"))?..,
            )
            .and_then(|r| r.get(..BLOCK_HEADER_LEN));
        let Some(header) = header else {
            classify_stop(offset)?;
            break;
        };
        let (Some(&kind_byte), Some(version), Some(stored_len)) = (
            header.first(),
            crate::bytes::le_u32(header, 2),
            block::declared_payload_len(header),
        ) else {
            classify_stop(offset)?;
            break;
        };
        let end = offset
            .saturating_add(min_block)
            .saturating_add(stored_len.min(MAX_PAYLOAD));
        if stored_len > MAX_PAYLOAD || end > len || BlockKind::from_kind_byte(kind_byte).is_none() {
            classify_stop(offset)?;
            break;
        }
        // kind_byte just round-tripped through from_kind_byte above
        if let Some(kind) = BlockKind::from_kind_byte(kind_byte) {
            if kind != BlockKind::Checkpoint {
                raw.push(RawEntry {
                    offset,
                    kind,
                    version,
                });
            }
        }
        offset = end;
    }
    // counts: a block's span in version space reaches to the next data
    // block's first version; the final block needs its payload decoded
    // only if it is a batch
    let mut index = Vec::with_capacity(raw.len());
    let mut latest = 0u32;
    let mut decoded_span = None;
    for (i, e) in raw.iter().enumerate() {
        let expected = latest.saturating_add(1);
        if e.version != expected {
            return Err(corrupt(
                e.offset,
                format!(
                    "block sequence broken: expected version {expected}, found {}",
                    e.version
                ),
            ));
        }
        let count = match raw.get(i + 1) {
            Some(next) => next
                .version
                .checked_sub(e.version)
                .filter(|&c| c >= 1)
                .ok_or_else(|| {
                    corrupt(
                        next.offset,
                        format!(
                            "block sequence not increasing: version {} follows {}",
                            next.version, e.version
                        ),
                    )
                })?,
            None if e.kind == BlockKind::Batch => {
                // the only case needing a payload: the final batch block's
                // count is not derivable from a successor header
                let scanned = match block::scan_block(bytes, e.offset) {
                    Scan::Block(b) => b,
                    Scan::Corrupt(err) => return Err(err),
                    Scan::TornTail => {
                        return Err(corrupt(e.offset, "indexed block failed re-verification"))
                    }
                };
                decoded_span = Some(block_span(scanned.header.stored_len));
                let payload = decode_payload(&scanned)?;
                let docs =
                    batch_bytes_to_docs(&payload).map_err(|err| stream_err(e.offset, err))?;
                u32::try_from(docs.len())
                    .ok()
                    .filter(|&c| c >= 1)
                    .ok_or_else(|| corrupt(e.offset, "batch block with zero versions"))?
            }
            None => 1,
        };
        latest = e.version.saturating_add(count.saturating_sub(1));
        index.push(IndexEntry {
            offset: e.offset,
            kind: e.kind,
            first_version: e.version,
            count,
        });
    }
    Ok((index, latest, decoded_span))
}

impl StoreReader for ColdArchive {
    fn spec(&self) -> &KeySpec {
        &self.spec
    }

    fn latest(&self) -> u32 {
        self.latest
    }

    fn retrieve(&self, v: u32) -> Result<Option<Document>, StoreError> {
        self.metrics.retrieves.inc();
        let Some(entry) = self.entry_for(v) else {
            return Ok(None);
        };
        if entry.kind == BlockKind::Empty {
            return Ok(None);
        }
        let mut docs = self.docs_in(entry)?;
        let at = usize::try_from(v.saturating_sub(entry.first_version))
            .map_err(|_| corrupt(entry.offset, "version offset exceeds the address space"))?;
        Ok(docs.get_mut(at).and_then(Option::take))
    }

    fn retrieve_into(&self, v: u32, out: &mut dyn Write) -> Result<bool, StoreError> {
        match self.retrieve(v)? {
            Some(doc) => {
                out.write_all(xarch_xml::writer::to_compact_string(&doc).as_bytes())?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Streaming scan: decodes one block at a time (never the whole
    /// archive at once) and probes each version's document for the
    /// addressed element.
    fn history(&self, steps: &[KeyQuery]) -> Result<Option<TimeSet>, StoreError> {
        let mut ts = TimeSet::new();
        for &entry in &self.index {
            for (i, doc) in self.docs_in(entry)?.iter().enumerate() {
                let Some(doc) = doc else { continue };
                if query::find_in_doc(doc, &self.spec, steps).is_some() {
                    let v = entry
                        .first_version
                        .saturating_add(u32::try_from(i).unwrap_or(u32::MAX));
                    ts.insert(v);
                }
            }
        }
        Ok((!ts.is_empty()).then_some(ts))
    }

    /// Storage-level statistics: the cold reader never materializes the
    /// archive tree, so the node counts (`elements`, `texts`, `stamps`)
    /// are reported as 0; `size_bytes` is the mapped segment size.
    fn stats(&self) -> Result<StoreStats, StoreError> {
        Ok(StoreStats {
            versions: self.latest,
            elements: 0,
            texts: 0,
            stamps: 0,
            size_bytes: self.map.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::{DurableArchive, DurableOptions};
    use crate::scratch_path;
    use xarch_core::{Archive, VersionStore};
    use xarch_xml::parse;

    fn spec() -> KeySpec {
        KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))\n(/db/rec, (val, {}))").unwrap()
    }

    fn fresh_inner() -> Box<dyn VersionStore> {
        Box::new(Archive::new(spec()))
    }

    fn doc_n(n: u32) -> Document {
        parse(&format!("<db><rec><id>1</id><val>v{n}</val></rec></db>")).unwrap()
    }

    fn write_segment(path: &std::path::Path, opts: DurableOptions, n: u32) {
        let mut d = DurableArchive::open_with(path, opts, fresh_inner()).unwrap();
        for i in 1..=n {
            d.add_version(&doc_n(i)).unwrap();
        }
    }

    #[test]
    fn cold_retrieve_matches_warm_and_decodes_one_block() {
        let path = scratch_path("cold-basic");
        write_segment(&path, DurableOptions::default(), 8);
        let cold = ColdArchive::open(&path).unwrap();
        assert_eq!(cold.latest(), 8);
        let before = cold.bytes_decoded();
        let got = StoreReader::retrieve(&cold, 5).unwrap().unwrap();
        assert!(xarch_core::equiv_modulo_key_order(
            &got,
            &doc_n(5),
            cold.spec()
        ));
        let decoded = cold.bytes_decoded() - before;
        assert!(decoded > 0);
        assert!(
            decoded < cold.mapped_bytes() / 2,
            "one point retrieve decoded {decoded} of {} mapped bytes",
            cold.mapped_bytes()
        );
        if cfg!(unix) {
            assert!(cold.is_mapped());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cold_reader_handles_batches_empties_and_checkpoints() {
        let path = scratch_path("cold-mixed");
        let opts = DurableOptions {
            compression: BlockCodec::Lzss,
            checkpoint_every: Some(2),
            ..DurableOptions::default()
        };
        {
            let mut d = DurableArchive::open_with(&path, opts, fresh_inner()).unwrap();
            d.add_version(&doc_n(1)).unwrap();
            d.add_versions(&[doc_n(2), doc_n(3), doc_n(4)]).unwrap();
            d.add_empty_version().unwrap();
            d.add_version(&doc_n(6)).unwrap();
            assert!(d.checkpoints_written() > 0, "cadence must have fired");
        }
        let cold = ColdArchive::open(&path).unwrap();
        assert_eq!(cold.latest(), 6);
        for v in [1u32, 2, 3, 4, 6] {
            let got = StoreReader::retrieve(&cold, v).unwrap().unwrap();
            assert!(
                xarch_core::equiv_modulo_key_order(&got, &doc_n(v), cold.spec()),
                "version {v} mismatched"
            );
        }
        assert!(StoreReader::retrieve(&cold, 5).unwrap().is_none());
        assert!(cold.has_version(5));
        assert!(StoreReader::retrieve(&cold, 7).unwrap().is_none());
        // history streams block-by-block
        let steps = [
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", "1"),
        ];
        let ts = StoreReader::history(&cold, &steps).unwrap().unwrap();
        assert_eq!(ts.versions().collect::<Vec<_>>(), vec![1, 2, 3, 4, 6]);
        // as_of rides the default: one retrieve, one descent
        let sub = StoreReader::as_of(&cold, &steps, 3).unwrap().unwrap();
        assert!(xarch_xml::writer::to_compact_string(&sub).contains("v3"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cold_open_ignores_torn_tail_but_fails_on_interior_rot() {
        let path = scratch_path("cold-torn");
        write_segment(&path, DurableOptions::default(), 3);
        // torn tail: append a strict prefix of a real block (what a
        // crashed append leaves behind) — quietly excluded
        let committed = std::fs::metadata(&path).unwrap().len();
        {
            use std::io::Write as _;
            let torn = block::encode_block(BlockKind::Version, BlockCodec::Raw, 4, 3, b"abc");
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&torn[..BLOCK_HEADER_LEN + 2]).unwrap();
        }
        let cold = ColdArchive::open(&path).unwrap();
        assert_eq!(cold.latest(), 3);
        drop(cold);
        // interior rot: flip a payload byte in the first block — the walk
        // still indexes it (headers only), but touching it is loud
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(usize::try_from(committed).unwrap());
        let first_block = {
            let sb = superblock::encode(&spec()).unwrap();
            sb.len()
        };
        bytes[first_block + BLOCK_HEADER_LEN + 2] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let cold = ColdArchive::open(&path).unwrap();
        let err = StoreReader::retrieve(&cold, 1).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        // undamaged blocks stay readable
        assert!(StoreReader::retrieve(&cold, 2).unwrap().is_some());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cold_open_is_refused_while_a_writer_is_live() {
        let path = scratch_path("cold-lock");
        let d = DurableArchive::open(&path, fresh_inner()).unwrap();
        let err = ColdArchive::open(&path).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("open for writing"), "{err}");
        drop(d);
        // two cold readers share happily
        let c1 = ColdArchive::open(&path).unwrap();
        let c2 = ColdArchive::open(&path).unwrap();
        assert_eq!(c1.latest(), c2.latest());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cold_archive_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ColdArchive>();
    }
}
