//! Checkpoint block payloads: a back-chained snapshot of the
//! materialized archive state.
//!
//! A checkpoint block (kind 4, see `docs/FORMAT.md` §Checkpoint blocks)
//! carries the inner backend's serialized state as produced by
//! [`VersionStore::checkpoint_state`](xarch_core::VersionStore::checkpoint_state),
//! wrapped in a small envelope:
//!
//! ```text
//! ┌───────────────────┬─────────────────┬───────────────────────────┐
//! │ prev varint       │ covered varint  │ state: varint len + bytes │
//! │ (file offset of   │ (latest version │ (opaque backend payload,  │
//! │ the previous      │ the state       │ tagged — see              │
//! │ checkpoint block, │ includes)       │ xarch_core::state)        │
//! │ 0 = none)         │                 │                           │
//! └───────────────────┴─────────────────┴───────────────────────────┘
//! ```
//!
//! The `prev` offset back-chains checkpoints so recovery can walk to an
//! older snapshot when the newest one is damaged; `covered` duplicates the
//! block header's version field so a decoded payload is self-contained.
//! Checkpoints are *pure redundancy*: every bit of state they carry is
//! derivable by replaying the journal, so a damaged checkpoint is loudly
//! recorded and skipped — never a reason an open fails.

use xarch_core::wire::{get_bytes, get_varint, put_bytes, put_varint};
use xarch_core::StoreError;

/// A decoded checkpoint payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPayload {
    /// File offset of the previous checkpoint block's header, `0` when
    /// this is the segment's first checkpoint (offset 0 is always inside
    /// the superblock, so it cannot address a block).
    pub prev: u64,
    /// The latest version the snapshot covers: restoring it and replaying
    /// blocks for versions `covered + 1..` rebuilds the full state.
    pub covered: u32,
    /// The backend-tagged opaque state (see `xarch_core::state`).
    pub state: Vec<u8>,
}

/// Encodes a checkpoint payload (the *uncompressed* block payload; the
/// segment layer may still run it through a block codec).
pub fn encode_checkpoint(prev: u64, covered: u32, state: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(state.len() + 20);
    put_varint(&mut out, prev);
    put_varint(&mut out, u64::from(covered));
    put_bytes(&mut out, state);
    out
}

/// Decodes a checkpoint payload. `payload_offset` is the file offset of
/// the decoded payload's first byte, so every error is positioned in file
/// coordinates.
pub fn decode_checkpoint(
    payload: &[u8],
    payload_offset: u64,
) -> Result<CheckpointPayload, StoreError> {
    let at = |pos: usize, reason: String| StoreError::Corrupt {
        offset: payload_offset.saturating_add(pos as u64),
        reason,
    };
    let wire = |e: xarch_core::wire::WireError| at(e.offset, format!("checkpoint: {}", e.reason));
    let mut pos = 0usize;
    let prev = get_varint(payload, &mut pos).map_err(wire)?;
    let covered_at = pos;
    let covered_raw = get_varint(payload, &mut pos).map_err(wire)?;
    let covered = u32::try_from(covered_raw).map_err(|_| {
        at(
            covered_at,
            "checkpoint: covered version overflows u32".into(),
        )
    })?;
    let state = get_bytes(payload, &mut pos).map_err(wire)?.to_vec();
    if pos != payload.len() {
        return Err(at(pos, "checkpoint: trailing bytes after state".into()));
    }
    Ok(CheckpointPayload {
        prev,
        covered,
        state,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let enc = encode_checkpoint(1234, 77, b"opaque state");
        let dec = decode_checkpoint(&enc, 500).unwrap();
        assert_eq!(dec.prev, 1234);
        assert_eq!(dec.covered, 77);
        assert_eq!(dec.state, b"opaque state");
    }

    #[test]
    fn first_checkpoint_has_no_back_chain() {
        let dec = decode_checkpoint(&encode_checkpoint(0, 1, &[]), 0).unwrap();
        assert_eq!(dec.prev, 0);
        assert!(dec.state.is_empty());
    }

    #[test]
    fn truncation_and_trailing_bytes_are_positioned_errors() {
        let enc = encode_checkpoint(9, 3, b"state");
        for cut in 0..enc.len() {
            let err = decode_checkpoint(&enc[..cut], 100).unwrap_err();
            let StoreError::Corrupt { offset, .. } = err else {
                panic!("expected Corrupt, got {err}");
            };
            assert!(offset >= 100, "offset {offset} not file-positioned");
        }
        let mut long = enc.clone();
        long.push(0);
        let err = decode_checkpoint(&long, 0).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn covered_version_overflow_is_rejected() {
        let mut enc = Vec::new();
        xarch_core::wire::put_varint(&mut enc, 0);
        xarch_core::wire::put_varint(&mut enc, u64::from(u32::MAX) + 1);
        xarch_core::wire::put_bytes(&mut enc, &[]);
        let err = decode_checkpoint(&enc, 0).unwrap_err();
        assert!(err.to_string().contains("overflows"), "{err}");
    }
}
