//! Hand-rolled CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) —
//! the checksum gzip and zip use. The environment has no registry access,
//! so the table is generated in a `const` context at compile time.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        // xarch-allow: cast-safety -- i < 256 fits losslessly; u32::try_from is not const
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = make_table();

/// An incremental CRC-32 hasher.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            // the table index is the low state byte xor the input byte —
            // expressed via `to_le_bytes` so no truncating cast is needed
            let idx = usize::from(self.state.to_le_bytes()[0] ^ b);
            self.state = TABLE[idx] ^ (self.state >> 8);
        }
    }

    /// The final checksum value.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // standard check values for CRC-32/ISO-HDLC
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data = b"archiving scientific data";
        let mut c = Crc32::new();
        c.update(&data[..7]);
        c.update(&data[7..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"payload bytes under test".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
