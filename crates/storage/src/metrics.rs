//! Storage-layer observability: the canonical `segment.*` / `recovery.*`
//! metric handles and the tracer the journal reports through.
//!
//! A [`StorageMetrics`] is embedded in every [`Segment`](crate::Segment);
//! by default it is *detached* (per-handle counters, silent tracer), and
//! [`StorageMetrics::registered`] binds the same handles to an
//! [`Obs`] registry so the exposition writers see them.

use xarch_obs::{Counter, Gauge, Histogram, Level, Obs, Tracer};

/// Cheap-clone bundle of every storage-layer metric handle.
#[derive(Clone, Debug)]
pub struct StorageMetrics {
    /// `segment.fsyncs` — fsyncs issued to commit blocks (group commit's
    /// measurable effect: one per batch, not one per version; the
    /// superblock sync at create time is not a commit and is excluded).
    pub fsyncs: Counter,
    /// `segment.blocks_written` — blocks appended to the journal.
    pub blocks_written: Counter,
    /// `segment.bytes_written` — encoded block bytes appended.
    pub bytes_written: Counter,
    /// `segment.journal_len` — live length of the segment file in bytes.
    pub journal_len: Gauge,
    /// `recovery.torn_tail_truncations` — uncommitted torn tails dropped
    /// during open.
    pub torn_tail_truncations: Counter,
    /// `recovery.corrupt_blocks` — blocks rejected as bit rot (opens that
    /// failed loudly rather than truncate).
    pub corrupt_blocks: Counter,
    /// `recovery.versions_replayed` — committed versions replayed on open.
    pub versions_replayed: Counter,
    /// `recovery.replay_duration` — wall time of `Segment::open` (µs).
    pub replay_duration: Histogram,
    tracer: Tracer,
}

impl Default for StorageMetrics {
    /// Detached handles and a silent tracer — what an unobserved
    /// `DurableArchive` embeds.
    fn default() -> Self {
        Self {
            fsyncs: Counter::new(),
            blocks_written: Counter::new(),
            bytes_written: Counter::new(),
            journal_len: Gauge::new(),
            torn_tail_truncations: Counter::new(),
            corrupt_blocks: Counter::new(),
            versions_replayed: Counter::new(),
            replay_duration: Histogram::new(),
            tracer: Tracer::silent(),
        }
    }
}

impl StorageMetrics {
    pub fn detached() -> Self {
        Self::default()
    }

    /// Handles registered under the canonical storage metric names, and
    /// events routed through the bundle's tracer.
    pub fn registered(obs: &Obs) -> Self {
        let r = obs.registry();
        Self {
            fsyncs: r.counter(
                "segment.fsyncs",
                "syncs",
                "fsyncs issued to commit journal blocks",
            ),
            blocks_written: r.counter(
                "segment.blocks_written",
                "blocks",
                "blocks appended to the journal",
            ),
            bytes_written: r.counter(
                "segment.bytes_written",
                "bytes",
                "encoded block bytes appended to the journal",
            ),
            journal_len: r.gauge(
                "segment.journal_len",
                "bytes",
                "live length of the segment file",
            ),
            torn_tail_truncations: r.counter(
                "recovery.torn_tail_truncations",
                "events",
                "uncommitted torn tails truncated during open",
            ),
            corrupt_blocks: r.counter(
                "recovery.corrupt_blocks",
                "blocks",
                "journal blocks rejected as corrupt during open",
            ),
            versions_replayed: r.counter(
                "recovery.versions_replayed",
                "versions",
                "committed versions replayed from the journal on open",
            ),
            replay_duration: r.histogram(
                "recovery.replay_duration",
                "micros",
                "wall time of journal replay on open",
            ),
            tracer: obs.tracer().clone(),
        }
    }

    /// Emit a structured event through the bundle's tracer.
    pub(crate) fn event(
        &self,
        level: Level,
        target: &'static str,
        fields: &[(&'static str, String)],
    ) {
        self.tracer.event(level, target, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_handles_share_the_registry() {
        let obs = Obs::disconnected();
        let m = StorageMetrics::registered(&obs);
        m.fsyncs.inc();
        let seen = obs
            .registry()
            .get_counter("segment.fsyncs")
            .expect("canonical name registered");
        assert_eq!(seen.get(), 1);
        assert!(obs
            .registry()
            .get_histogram("recovery.replay_duration")
            .is_some());
    }

    #[test]
    fn detached_metrics_are_isolated() {
        let a = StorageMetrics::detached();
        let b = StorageMetrics::detached();
        a.blocks_written.inc();
        assert_eq!(b.blocks_written.get(), 0);
    }
}
