//! Storage-layer observability: the canonical `segment.*` / `recovery.*`
//! metric handles and the tracer the journal reports through.
//!
//! A [`StorageMetrics`] is embedded in every [`Segment`](crate::Segment);
//! by default it is *detached* (per-handle counters, silent tracer), and
//! [`StorageMetrics::registered`] binds the same handles to an
//! [`Obs`] registry so the exposition writers see them.

use xarch_obs::{Counter, Gauge, Histogram, Level, Obs, Tracer};

/// Cheap-clone bundle of every storage-layer metric handle.
#[derive(Clone, Debug)]
pub struct StorageMetrics {
    /// `segment.fsyncs` — fsyncs issued to commit blocks (group commit's
    /// measurable effect: one per batch, not one per version; the
    /// superblock sync at create time is not a commit and is excluded).
    pub fsyncs: Counter,
    /// `segment.blocks_written` — blocks appended to the journal.
    pub blocks_written: Counter,
    /// `segment.bytes_written` — encoded block bytes appended.
    pub bytes_written: Counter,
    /// `segment.journal_len` — live length of the segment file in bytes.
    pub journal_len: Gauge,
    /// `recovery.torn_tail_truncations` — uncommitted torn tails dropped
    /// during open.
    pub torn_tail_truncations: Counter,
    /// `recovery.corrupt_blocks` — blocks rejected as bit rot (opens that
    /// failed loudly rather than truncate).
    pub corrupt_blocks: Counter,
    /// `recovery.versions_replayed` — committed versions replayed on open.
    pub versions_replayed: Counter,
    /// `recovery.replay_duration` — wall time of `Segment::open` (µs).
    pub replay_duration: Histogram,
    /// `checkpoint.blocks_written` — checkpoint blocks appended.
    pub checkpoints_written: Counter,
    /// `checkpoint.bytes_written` — encoded checkpoint block bytes
    /// appended. Tracked apart from `segment.bytes_written` (which counts
    /// version blocks only) so the journal/checkpoint split stays visible.
    pub checkpoint_bytes: Counter,
    /// `recovery.checkpoints_loaded` — opens that restored a checkpoint
    /// snapshot instead of replaying the whole journal.
    pub checkpoints_loaded: Counter,
    /// `recovery.checkpoints_skipped` — damaged checkpoint blocks loudly
    /// stepped over during recovery (each also counts as a corrupt block).
    pub checkpoints_skipped: Counter,
    tracer: Tracer,
}

impl Default for StorageMetrics {
    /// Detached handles and a silent tracer — what an unobserved
    /// `DurableArchive` embeds.
    fn default() -> Self {
        Self {
            fsyncs: Counter::new(),
            blocks_written: Counter::new(),
            bytes_written: Counter::new(),
            journal_len: Gauge::new(),
            torn_tail_truncations: Counter::new(),
            corrupt_blocks: Counter::new(),
            versions_replayed: Counter::new(),
            replay_duration: Histogram::new(),
            checkpoints_written: Counter::new(),
            checkpoint_bytes: Counter::new(),
            checkpoints_loaded: Counter::new(),
            checkpoints_skipped: Counter::new(),
            tracer: Tracer::silent(),
        }
    }
}

impl StorageMetrics {
    /// Unregistered handles with a silent tracer — counts are recorded
    /// but reported nowhere. Used when no observability bundle is bound.
    pub fn detached() -> Self {
        Self::default()
    }

    /// Handles registered under the canonical storage metric names, and
    /// events routed through the bundle's tracer.
    pub fn registered(obs: &Obs) -> Self {
        let r = obs.registry();
        Self {
            fsyncs: r.counter(
                "segment.fsyncs",
                "syncs",
                "fsyncs issued to commit journal blocks",
            ),
            blocks_written: r.counter(
                "segment.blocks_written",
                "blocks",
                "blocks appended to the journal",
            ),
            bytes_written: r.counter(
                "segment.bytes_written",
                "bytes",
                "encoded block bytes appended to the journal",
            ),
            journal_len: r.gauge(
                "segment.journal_len",
                "bytes",
                "live length of the segment file",
            ),
            torn_tail_truncations: r.counter(
                "recovery.torn_tail_truncations",
                "events",
                "uncommitted torn tails truncated during open",
            ),
            corrupt_blocks: r.counter(
                "recovery.corrupt_blocks",
                "blocks",
                "journal blocks rejected as corrupt during open",
            ),
            versions_replayed: r.counter(
                "recovery.versions_replayed",
                "versions",
                "committed versions replayed from the journal on open",
            ),
            replay_duration: r.histogram(
                "recovery.replay_duration",
                "micros",
                "wall time of journal replay on open",
            ),
            checkpoints_written: r.counter(
                "checkpoint.blocks_written",
                "blocks",
                "checkpoint blocks appended to the segment",
            ),
            checkpoint_bytes: r.counter(
                "checkpoint.bytes_written",
                "bytes",
                "encoded checkpoint block bytes appended",
            ),
            checkpoints_loaded: r.counter(
                "recovery.checkpoints_loaded",
                "snapshots",
                "opens that restored a checkpoint instead of a full replay",
            ),
            checkpoints_skipped: r.counter(
                "recovery.checkpoints_skipped",
                "blocks",
                "damaged checkpoint blocks stepped over during recovery",
            ),
            tracer: obs.tracer().clone(),
        }
    }

    /// Emit a structured event through the bundle's tracer.
    pub(crate) fn event(
        &self,
        level: Level,
        target: &'static str,
        fields: &[(&'static str, String)],
    ) {
        self.tracer.event(level, target, fields);
    }
}

/// Cheap-clone bundle of the cold-read path's `cold.*` metric handles.
///
/// Embedded in every [`ColdArchive`](crate::ColdArchive). Comparing
/// `cold.bytes_decoded` against `segment.journal_len` (or the file size)
/// is how the "point query without materializing the archive" claim is
/// checked: a cold retrieve decodes one block, not the file.
#[derive(Clone, Debug)]
pub struct ColdMetrics {
    /// `cold.retrieves` — point retrievals served off the mapped segment.
    pub retrieves: Counter,
    /// `cold.blocks_decoded` — journal blocks checksummed and decoded on
    /// behalf of cold queries.
    pub blocks_decoded: Counter,
    /// `cold.bytes_decoded` — stored block bytes checksummed and decoded
    /// on behalf of cold queries.
    pub bytes_decoded: Counter,
    /// `cold.mapped_bytes` — bytes of segment file currently mapped.
    pub mapped_bytes: Gauge,
    tracer: Tracer,
}

impl Default for ColdMetrics {
    fn default() -> Self {
        Self {
            retrieves: Counter::new(),
            blocks_decoded: Counter::new(),
            bytes_decoded: Counter::new(),
            mapped_bytes: Gauge::new(),
            tracer: Tracer::silent(),
        }
    }
}

impl ColdMetrics {
    /// Detached handles and a silent tracer.
    pub fn detached() -> Self {
        Self::default()
    }

    /// Handles registered under the canonical `cold.*` names, and events
    /// routed through the registry's tracer.
    pub fn registered(obs: &Obs) -> Self {
        let r = obs.registry();
        Self {
            retrieves: r.counter(
                "cold.retrieves",
                "queries",
                "point retrievals served off the mapped segment",
            ),
            blocks_decoded: r.counter(
                "cold.blocks_decoded",
                "blocks",
                "journal blocks decoded for cold queries",
            ),
            bytes_decoded: r.counter(
                "cold.bytes_decoded",
                "bytes",
                "stored block bytes decoded for cold queries",
            ),
            mapped_bytes: r.gauge(
                "cold.mapped_bytes",
                "bytes",
                "segment file bytes currently memory-mapped",
            ),
            tracer: obs.tracer().clone(),
        }
    }

    /// Emit a structured event through the bundle's tracer.
    pub(crate) fn event(
        &self,
        level: Level,
        target: &'static str,
        fields: &[(&'static str, String)],
    ) {
        self.tracer.event(level, target, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_handles_share_the_registry() {
        let obs = Obs::disconnected();
        let m = StorageMetrics::registered(&obs);
        m.fsyncs.inc();
        let seen = obs
            .registry()
            .get_counter("segment.fsyncs")
            .expect("canonical name registered");
        assert_eq!(seen.get(), 1);
        assert!(obs
            .registry()
            .get_histogram("recovery.replay_duration")
            .is_some());
    }

    #[test]
    fn detached_metrics_are_isolated() {
        let a = StorageMetrics::detached();
        let b = StorageMetrics::detached();
        a.blocks_written.inc();
        assert_eq!(b.blocks_written.get(), 0);
    }
}
