//! Block framing: one length-prefixed, checksummed, commit-stamped block
//! per committed version.
//!
//! ```text
//! header (22 bytes)                        payload            trailer (8 bytes)
//! ┌──────┬───────┬─────────┬─────────┬────────────┬─────────┬───────┬────────┐
//! │ kind │ codec │ version │ raw_len │ stored_len │ payload │ crc32 │ commit │
//! │  u8  │  u8   │ u32 LE  │ u64 LE  │  u64 LE    │  bytes  │ u32LE │ u32 LE │
//! └──────┴───────┴─────────┴─────────┴────────────┴─────────┴───────┴────────┘
//! ```
//!
//! The CRC covers header + payload; the commit word is written last.
//! Classification of a bad block depends on where it sits: any failure in
//! the *final* block (absent commit word or CRC mismatch) is treated as a
//! torn write and truncated away — a single power-lost append can persist
//! its pages out of order, so even an intact commit word cannot prove the
//! payload reached disk. An *interior* block that fails verification can
//! only be bit rot on committed data and fails loudly.

use xarch_compress::BlockCodec;
use xarch_core::StoreError;

use crate::bytes::{le_u32, le_u64};
use crate::crc::crc32;

/// Fixed size of the block header.
pub const BLOCK_HEADER_LEN: usize = 22;
/// Fixed size of the block trailer (CRC + commit word).
pub const BLOCK_TRAILER_LEN: usize = 8;
/// The commit word: the last four bytes written for a block.
pub const COMMIT_MAGIC: u32 = 0x434D_5421; // "CMT!"

/// Largest accepted payload (1 GiB) — a sanity bound so a corrupted length
/// field cannot drive a multi-gigabyte allocation.
pub const MAX_PAYLOAD: u64 = 1 << 30;

/// What a block holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// An archived version: the payload is the version document encoded as
    /// an `xarch_extmem` event stream (possibly compressed).
    Version,
    /// An archived *empty* version (§2's footnote): no payload.
    Empty,
    /// A **group-committed batch** of versions: the payload is a varint
    /// count followed by length-prefixed per-version document payloads.
    /// The header's `version` field is the *first* version of the batch;
    /// the whole batch shares this block's single CRC and commit word, so
    /// a torn batch is truncated as one unit on reopen — recovery restores
    /// the pre-batch state, never a prefix of the batch.
    Batch,
    /// A **checkpoint**: the payload is a serialized snapshot of the
    /// materialized archive state covering every version up to and
    /// including the header's `version` field (see `docs/FORMAT.md`
    /// §Checkpoint blocks). Checkpoints commit *zero* new versions — they
    /// are pure redundancy over the journal, written so reopen can restore
    /// the snapshot and replay only the tail instead of the whole history.
    Checkpoint,
}

impl BlockKind {
    fn id(self) -> u8 {
        match self {
            BlockKind::Version => 1,
            BlockKind::Empty => 2,
            BlockKind::Batch => 3,
            BlockKind::Checkpoint => 4,
        }
    }

    fn from_id(id: u8) -> Option<Self> {
        match id {
            1 => Some(BlockKind::Version),
            2 => Some(BlockKind::Empty),
            3 => Some(BlockKind::Batch),
            4 => Some(BlockKind::Checkpoint),
            _ => None,
        }
    }

    /// The raw kind byte as stored in block headers (`docs/FORMAT.md`
    /// §Block kinds).
    pub fn kind_byte(self) -> u8 {
        self.id()
    }

    /// Inverse of [`BlockKind::kind_byte`]; `None` for unassigned ids.
    pub fn from_kind_byte(id: u8) -> Option<Self> {
        Self::from_id(id)
    }
}

/// A decoded block header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockHeader {
    /// What the payload carries (`docs/FORMAT.md` §Block kinds).
    pub kind: BlockKind,
    /// How the payload bytes are stored (raw or LZSS-compressed).
    pub codec: BlockCodec,
    /// The version number this block committed (first block = 1, then +1).
    pub version: u32,
    /// Uncompressed payload size in bytes.
    pub raw_len: u64,
    /// Stored (possibly compressed) payload size in bytes.
    pub stored_len: u64,
}

/// One fully verified block read back from a segment.
#[derive(Debug, Clone)]
pub struct ScannedBlock {
    /// The decoded, CRC-verified header.
    pub header: BlockHeader,
    /// Stored payload bytes (still encoded per `header.codec`).
    pub payload: Vec<u8>,
    /// Byte offset of the block header within the file.
    pub offset: u64,
}

/// Encodes a complete block (header, payload, trailer) ready to append.
pub fn encode_block(
    kind: BlockKind,
    codec: BlockCodec,
    version: u32,
    raw_len: u64,
    payload: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(BLOCK_HEADER_LEN + payload.len() + BLOCK_TRAILER_LEN);
    out.push(kind.id());
    out.push(codec.id());
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&raw_len.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&COMMIT_MAGIC.to_le_bytes());
    out
}

/// The outcome of examining the bytes at one block offset.
#[derive(Debug)]
pub enum Scan {
    /// A fully committed, checksum-verified block.
    Block(ScannedBlock),
    /// The file ends in an uncommitted (torn) write starting here: the
    /// block is incomplete and its commit word never made it to disk.
    /// Recovery truncates the file at this offset.
    TornTail,
    /// Committed-looking data that fails verification — bit rot, not a
    /// torn write. Opening must fail.
    Corrupt(StoreError),
}

fn corrupt(offset: u64, reason: impl Into<String>) -> Scan {
    Scan::Corrupt(StoreError::Corrupt {
        offset,
        reason: reason.into(),
    })
}

/// The declared payload size of the block whose complete 22-byte header is
/// in `header`, or `None` when `header` is shorter than
/// [`BLOCK_HEADER_LEN`]. Used by streaming readers to know how much to
/// read next; the value is *unvalidated* (check against [`MAX_PAYLOAD`]
/// before allocating).
pub fn declared_payload_len(header: &[u8]) -> Option<u64> {
    le_u64(header, 14)
}

/// Examines one block given its complete 22-byte `header`, the bytes read
/// after it (`body` = payload + trailer, possibly short at end of file,
/// owned so the verified payload can be returned without copying), its
/// file `offset`, `bytes_after_end` — how many file bytes exist beyond the
/// block's declared end — and `eof_commit_word` — whether the file's final
/// four bytes are [`COMMIT_MAGIC`].
///
/// Torn-write classification leans on append-only prefix semantics: a
/// crashed append leaves a strict *prefix* of the block, so a complete
/// header is authored bytes and its lengths can be trusted to be within
/// [`MAX_PAYLOAD`] (the writer enforces that bound). An impossible length
/// in a complete header is therefore bit rot, never a torn write — it must
/// fail loudly rather than silently truncate away later committed blocks.
/// A *plausible* rotted length that runs past end of file is caught by
/// `eof_commit_word`: a genuine torn append cannot leave a later block's
/// commit word as the file's final bytes, so "length overruns the file,
/// yet the file ends committed" is also bit rot, not a tear.
pub fn scan_block_parts(
    header: &[u8],
    mut body: Vec<u8>,
    offset: u64,
    bytes_after_end: u64,
    eof_commit_word: bool,
) -> Scan {
    if header.len() < BLOCK_HEADER_LEN {
        return Scan::TornTail;
    }
    // a complete header makes these reads infallible, but decode paths are
    // total by policy: a short slice degrades to the torn-tail outcome
    let (Some(&kind_id), Some(&codec_id), Some(version), Some(raw_len), Some(stored_len)) = (
        header.first(),
        header.get(1),
        le_u32(header, 2),
        le_u64(header, 6),
        declared_payload_len(header),
    ) else {
        return Scan::TornTail;
    };
    if stored_len > MAX_PAYLOAD || raw_len > MAX_PAYLOAD {
        return corrupt(
            offset,
            format!("implausible payload length {stored_len} (raw {raw_len}) in block header"),
        );
    }
    let Ok(payload_len) = usize::try_from(stored_len) else {
        return corrupt(offset, "payload length exceeds the address space");
    };
    let Some(needed) = payload_len.checked_add(BLOCK_TRAILER_LEN) else {
        return corrupt(offset, "block span overflows the address space");
    };
    if body.len() < needed {
        return if eof_commit_word {
            corrupt(
                offset,
                format!(
                    "block declares {stored_len} payload bytes running past end of file, \
                     yet the file ends in a commit word — bit-rotted length field, \
                     refusing to truncate committed data"
                ),
            )
        } else {
            Scan::TornTail
        };
    }
    let (Some(trailer), Some(payload)) = (body.get(payload_len..needed), body.get(..payload_len))
    else {
        return Scan::TornTail;
    };
    let (Some(stored_crc), Some(commit)) = (le_u32(trailer, 0), le_u32(trailer, 4)) else {
        return Scan::TornTail;
    };
    if commit != COMMIT_MAGIC {
        // no commit word at the very end of the file = torn write;
        // anywhere else it is corruption
        return if bytes_after_end == 0 {
            Scan::TornTail
        } else {
            corrupt(offset, "missing commit word on an interior block")
        };
    }
    let Some(header_fixed) = header.get(..BLOCK_HEADER_LEN) else {
        return Scan::TornTail;
    };
    let mut crc = crate::crc::Crc32::new();
    crc.update(header_fixed);
    crc.update(payload);
    let actual = crc.finish();
    if actual != stored_crc {
        // The final append's pages may persist out of order, so a bad CRC
        // at the very end of the file is normally a torn write (the
        // version was never acknowledged); anywhere else it is bit rot on
        // committed data and must fail loudly. One disguise remains: a
        // rotted length field can inflate this block's span to end
        // *exactly* at end of file, swallowing later committed blocks and
        // borrowing the last one's commit word — so before truncating, the
        // doomed span is searched for an intact committed block, which a
        // genuine torn append cannot contain.
        return if bytes_after_end == 0 && !contains_committed_block(payload) {
            Scan::TornTail
        } else {
            corrupt(
                offset,
                format!(
                    "block checksum mismatch (stored {stored_crc:#010x}, computed {actual:#010x})"
                ),
            )
        };
    }
    let Some(kind) = BlockKind::from_id(kind_id) else {
        return corrupt(offset, format!("unknown block kind {kind_id}"));
    };
    let Some(codec) = BlockCodec::from_id(codec_id) else {
        return corrupt(offset, format!("unknown block codec {codec_id}"));
    };
    // hand the verified payload back in the buffer it was read into (the
    // trailer is 8 bytes — truncating beats copying on the replay path)
    body.truncate(payload_len);
    Scan::Block(ScannedBlock {
        header: BlockHeader {
            kind,
            codec,
            version,
            raw_len,
            stored_len,
        },
        payload: body,
        offset,
    })
}

/// True if `region` contains a fully checksummed committed block at any
/// byte offset. Used to keep a bit-rotted length field from masquerading
/// as a torn tail: the region a torn-write truncation is about to discard
/// is the uncommitted prefix of a single append, which cannot contain an
/// intact committed block. The byte scan's cheap header filter (kind,
/// codec, bounded lengths, in-range end) passes for roughly 2⁻⁵⁰ of random
/// offsets, so the CRC is almost never computed — this only runs on the
/// rare recovery path anyway.
fn contains_committed_block(region: &[u8]) -> bool {
    let min = BLOCK_HEADER_LEN + BLOCK_TRAILER_LEN;
    if region.len() < min {
        return false;
    }
    for s in 0..=region.len() - min {
        let Some(h) = region.get(s..s + BLOCK_HEADER_LEN) else {
            continue;
        };
        let (Some(&kind_id), Some(&codec_id)) = (h.first(), h.get(1)) else {
            continue;
        };
        if BlockKind::from_id(kind_id).is_none() || BlockCodec::from_id(codec_id).is_none() {
            continue;
        }
        let (Some(raw_len), Some(stored_len)) = (le_u64(h, 6), declared_payload_len(h)) else {
            continue;
        };
        if stored_len > MAX_PAYLOAD || raw_len > MAX_PAYLOAD {
            continue;
        }
        let Ok(payload_len) = usize::try_from(stored_len) else {
            continue;
        };
        let Some(end) = payload_len
            .checked_add(BLOCK_TRAILER_LEN)
            .and_then(|span| (s + BLOCK_HEADER_LEN).checked_add(span))
        else {
            continue;
        };
        if end > region.len() {
            continue;
        }
        let Some(trailer) = region.get(end - BLOCK_TRAILER_LEN..end) else {
            continue;
        };
        if trailer.get(4..) != Some(COMMIT_MAGIC.to_le_bytes().as_slice()) {
            continue;
        }
        let (Some(stored_crc), Some(covered)) =
            (le_u32(trailer, 0), region.get(s..end - BLOCK_TRAILER_LEN))
        else {
            continue;
        };
        if crc32(covered) == stored_crc {
            return true;
        }
    }
    false
}

/// Examines the block starting at `offset` in `buf`, where `buf` holds the
/// **whole file** (indexing is offset-absolute, and the end of `buf` is
/// treated as end of file). In-memory convenience over
/// [`scan_block_parts`].
pub fn scan_block(buf: &[u8], offset: u64) -> Scan {
    let Ok(o) = usize::try_from(offset) else {
        return corrupt(offset, "block offset exceeds the address space");
    };
    let Some(rest) = buf.get(o..) else {
        return Scan::TornTail;
    };
    if rest.len() < BLOCK_HEADER_LEN {
        return Scan::TornTail;
    }
    let (header, body) = rest.split_at(BLOCK_HEADER_LEN);
    let Some(stored_len) = declared_payload_len(header) else {
        return Scan::TornTail;
    };
    let needed = stored_len.saturating_add(BLOCK_TRAILER_LEN as u64);
    let bytes_after_end = (body.len() as u64).saturating_sub(needed);
    let Ok(take) = usize::try_from(needed.min(body.len() as u64)) else {
        return Scan::TornTail;
    };
    let Some(taken) = body.get(..take) else {
        return Scan::TornTail;
    };
    let eof_commit_word = buf.last_chunk::<4>() == Some(&COMMIT_MAGIC.to_le_bytes());
    scan_block_parts(
        header,
        taken.to_vec(),
        offset,
        bytes_after_end,
        eof_commit_word,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_scan_round_trip() {
        let payload = b"event bytes".to_vec();
        let buf = encode_block(
            BlockKind::Version,
            BlockCodec::Raw,
            3,
            payload.len() as u64,
            &payload,
        );
        match scan_block(&buf, 0) {
            Scan::Block(b) => {
                assert_eq!(b.header.kind, BlockKind::Version);
                assert_eq!(b.header.version, 3);
                assert_eq!(b.payload, payload);
            }
            other => panic!("expected a block, got {other:?}"),
        }
    }

    #[test]
    fn short_tail_is_torn() {
        let buf = encode_block(BlockKind::Empty, BlockCodec::Raw, 1, 0, &[]);
        for cut in 1..buf.len() {
            assert!(
                matches!(scan_block(&buf[..cut], 0), Scan::TornTail),
                "cut at {cut} should be a torn tail"
            );
        }
    }

    #[test]
    fn interior_body_bit_flip_is_corrupt_final_is_torn() {
        let payload = b"some payload".to_vec();
        let mut buf = encode_block(
            BlockKind::Version,
            BlockCodec::Raw,
            1,
            payload.len() as u64,
            &payload,
        );
        let one_block = buf.len();
        buf.extend_from_slice(&encode_block(BlockKind::Empty, BlockCodec::Raw, 2, 0, &[]));
        buf[BLOCK_HEADER_LEN + 2] ^= 0x01;
        // interior: committed data rotted — fail loudly
        assert!(matches!(scan_block(&buf, 0), Scan::Corrupt(_)));
        // final: indistinguishable from an out-of-order torn append — the
        // unacknowledged block is truncated, not fatal
        assert!(matches!(scan_block(&buf[..one_block], 0), Scan::TornTail));
    }

    #[test]
    fn interior_block_without_commit_word_is_corrupt() {
        let mut buf = encode_block(BlockKind::Empty, BlockCodec::Raw, 1, 0, &[]);
        let last = buf.len() - 1;
        buf[last] ^= 0xFF; // destroy the commit word…
        buf.extend_from_slice(&encode_block(BlockKind::Empty, BlockCodec::Raw, 2, 0, &[]));
        assert!(matches!(scan_block(&buf, 0), Scan::Corrupt(_)));
    }

    #[test]
    fn bit_rotted_length_field_is_corrupt_not_torn() {
        // a complete header is authored bytes (torn appends leave strict
        // prefixes), so an impossible stored_len must fail loudly — not be
        // classed as a torn tail, which would truncate away every later
        // committed block
        let mut buf = encode_block(BlockKind::Version, BlockCodec::Raw, 1, 3, b"abc");
        let second_at = buf.len();
        buf.extend_from_slice(&encode_block(BlockKind::Empty, BlockCodec::Raw, 2, 0, &[]));
        buf[14 + 7] |= 0x40; // set a high bit of the first block's stored_len
        assert!(matches!(scan_block(&buf, 0), Scan::Corrupt(_)));
        // the final block is equally protected
        let mut tail = buf[second_at..].to_vec();
        tail[14 + 7] |= 0x40;
        assert!(matches!(scan_block(&tail, 0), Scan::Corrupt(_)));
    }

    #[test]
    fn plausible_inflated_interior_length_is_corrupt_not_torn() {
        // inflate block 1's stored_len by 1 MiB (still under MAX_PAYLOAD):
        // its declared end now overruns the file, which looks like a torn
        // append — but the file ends in block 2's commit word, which a
        // genuine tear cannot produce. Truncating here would destroy the
        // committed, acknowledged block 2.
        let mut buf = encode_block(BlockKind::Version, BlockCodec::Raw, 1, 3, b"abc");
        buf.extend_from_slice(&encode_block(BlockKind::Empty, BlockCodec::Raw, 2, 0, &[]));
        let old = u64::from_le_bytes(buf[14..22].try_into().unwrap());
        buf[14..22].copy_from_slice(&(old + (1 << 20)).to_le_bytes());
        match scan_block(&buf, 0) {
            Scan::Corrupt(e) => assert!(e.to_string().contains("commit word"), "{e}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // the same overrun at the true end of file (no commit word after)
        // remains an ordinary torn tail
        let mut torn = encode_block(BlockKind::Version, BlockCodec::Raw, 1, 3, b"abc");
        let cut = torn.len() - 10;
        torn.truncate(cut);
        assert!(matches!(scan_block(&torn, 0), Scan::TornTail));
    }

    #[test]
    fn exact_fit_inflated_length_is_corrupt_not_torn() {
        // rot block 1's stored_len so its declared span ends *exactly* at
        // end of file: the candidate's trailer then aligns with block 3's
        // real trailer (commit word valid, CRC mismatching), which used to
        // read as a torn final append — truncating all three committed
        // blocks. The doomed span contains intact committed blocks, which
        // a genuine tear cannot, so this must fail loudly instead.
        let mut buf = encode_block(BlockKind::Version, BlockCodec::Raw, 1, 3, b"abc");
        buf.extend_from_slice(&encode_block(
            BlockKind::Version,
            BlockCodec::Raw,
            2,
            2,
            b"xy",
        ));
        buf.extend_from_slice(&encode_block(BlockKind::Empty, BlockCodec::Raw, 3, 0, &[]));
        let exact = (buf.len() - BLOCK_HEADER_LEN - BLOCK_TRAILER_LEN) as u64;
        buf[14..22].copy_from_slice(&exact.to_le_bytes());
        match scan_block(&buf, 0) {
            Scan::Corrupt(e) => assert!(e.to_string().contains("checksum"), "{e}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn final_block_without_commit_word_is_torn() {
        let mut buf = encode_block(BlockKind::Empty, BlockCodec::Raw, 1, 0, &[]);
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        assert!(matches!(scan_block(&buf, 0), Scan::TornTail));
    }
}
