//! Checked little-endian field reads for the decode paths.
//!
//! Decode code must never panic on corrupt input (the `panic-freedom`
//! invariant enforced by `xarch_analysis`), so raw slice indexing and
//! `try_into().expect(..)` are banned there. These helpers express the
//! same reads as total functions: out-of-range offsets yield `None`, which
//! callers map to a positioned `StoreError::Corrupt`.

/// Reads a little-endian `u32` at `at`, if `buf` is long enough.
pub(crate) fn le_u32(buf: &[u8], at: usize) -> Option<u32> {
    let raw = buf.get(at..at.checked_add(4)?)?;
    let arr: [u8; 4] = raw.try_into().ok()?;
    Some(u32::from_le_bytes(arr))
}

/// Reads a little-endian `u64` at `at`, if `buf` is long enough.
pub(crate) fn le_u64(buf: &[u8], at: usize) -> Option<u64> {
    let raw = buf.get(at..at.checked_add(8)?)?;
    let arr: [u8; 8] = raw.try_into().ok()?;
    Some(u64::from_le_bytes(arr))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_are_total() {
        let buf = 0xDEAD_BEEF_u32.to_le_bytes();
        assert_eq!(le_u32(&buf, 0), Some(0xDEAD_BEEF));
        assert_eq!(le_u32(&buf, 1), None);
        assert_eq!(le_u32(&buf, usize::MAX), None);
        let buf8 = 42u64.to_le_bytes();
        assert_eq!(le_u64(&buf8, 0), Some(42));
        assert_eq!(le_u64(&buf8, 1), None);
    }
}
