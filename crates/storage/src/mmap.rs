//! Read-only memory mapping for the cold-read path.
//!
//! [`MappedFile`] exposes a segment file as a `&[u8]` without reading it
//! into heap memory: on Unix it is a `PROT_READ`/`MAP_PRIVATE` `mmap`, so
//! the OS pages bytes in on demand and a cold query touches only the
//! blocks it actually decodes. On other platforms (and for zero-length
//! files, which `mmap` rejects) it degrades to a buffered read — the same
//! API, without the laziness.
//!
//! No external crate is involved: the Unix path declares the two libc
//! entry points it needs directly.

use std::fs::File;
#[cfg(not(unix))]
use std::io::Read;

use xarch_core::StoreError;

/// A file's contents as an immutable byte slice — memory-mapped where the
/// platform allows, buffered otherwise.
#[derive(Debug)]
pub struct MappedFile {
    backing: Backing,
}

#[derive(Debug)]
enum Backing {
    /// Zero-length file: nothing to map, nothing to read.
    Empty,
    /// Heap copy (non-Unix platforms).
    #[allow(dead_code)] // constructed only on non-unix targets
    Buffered(Vec<u8>),
    #[cfg(unix)]
    Mapped(unix::Mapping),
}

impl MappedFile {
    /// Maps (or reads) the entire current extent of `file`. The caller
    /// must ensure no writer truncates the file while the map is live —
    /// the cold reader takes a shared OS lock for exactly that reason.
    pub fn map(file: &File) -> Result<Self, StoreError> {
        let len = file.metadata()?.len();
        if len == 0 {
            return Ok(Self {
                backing: Backing::Empty,
            });
        }
        let len = usize::try_from(len).map_err(|_| {
            StoreError::Backend("file exceeds the address space and cannot be mapped".into())
        })?;
        Self::map_len(file, len)
    }

    #[cfg(unix)]
    fn map_len(file: &File, len: usize) -> Result<Self, StoreError> {
        Ok(Self {
            backing: Backing::Mapped(unix::Mapping::new(file, len)?),
        })
    }

    #[cfg(not(unix))]
    fn map_len(file: &File, len: usize) -> Result<Self, StoreError> {
        let mut buf = Vec::with_capacity(len);
        let mut f = file;
        f.read_to_end(&mut buf)?;
        Ok(Self {
            backing: Backing::Buffered(buf),
        })
    }

    /// The mapped (or buffered) bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.backing {
            Backing::Empty => &[],
            Backing::Buffered(buf) => buf,
            #[cfg(unix)]
            Backing::Mapped(m) => m.as_slice(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the bytes are served by a real memory map (false on the
    /// buffered fallback and for empty files) — the observability layer
    /// reports this so "cold read without materializing" claims are
    /// checkable.
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped(_) => true,
            _ => false,
        }
    }
}

#[cfg(unix)]
mod unix {
    use std::fs::File;
    use std::os::fd::AsRawFd;

    use xarch_core::StoreError;

    // The two libc entry points the map needs, declared directly so no
    // external crate is required. Flag values below are identical on
    // every Tier-1 Unix (Linux, macOS, the BSDs).
    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;
    /// `mmap`'s error return (`MAP_FAILED`), defined as `(void *) -1`.
    const MAP_FAILED: *mut core::ffi::c_void = usize::MAX as *mut core::ffi::c_void;

    /// An owned `PROT_READ` mapping, unmapped on drop.
    #[derive(Debug)]
    pub(super) struct Mapping {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ and private; the bytes it exposes
    // are immutable for its whole lifetime, so sharing the handle (or the
    // &[u8] borrowed from it) across threads cannot race.
    unsafe impl Send for Mapping {}
    // SAFETY: as above — read-only memory, no interior mutability.
    unsafe impl Sync for Mapping {}

    impl Mapping {
        pub(super) fn new(file: &File, len: usize) -> Result<Self, StoreError> {
            // (zero-length maps are rejected by the OS, so MappedFile::map
            // short-circuits them before calling here)
            // SAFETY: fd is a valid open descriptor borrowed from `file`
            // for the call; len > 0 per the caller; NULL addr lets the
            // kernel choose placement.
            let ptr = unsafe {
                mmap(
                    core::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == MAP_FAILED || ptr.is_null() {
                return Err(StoreError::Io(std::io::Error::last_os_error()));
            }
            Ok(Self {
                ptr: ptr.cast::<u8>().cast_const(),
                len,
            })
        }

        pub(super) fn as_slice(&self) -> &[u8] {
            // SAFETY: ptr..ptr+len is exactly the live PROT_READ mapping
            // established in new(); it stays valid until munmap in Drop,
            // and the returned borrow cannot outlive self.
            unsafe { core::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: ptr/len are the exact values returned by the mmap
            // call in new(), unmapped exactly once (Mapping is not Clone).
            let _ = unsafe { munmap(self.ptr.cast_mut().cast::<core::ffi::c_void>(), self.len) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch_path;

    #[test]
    fn maps_file_contents() {
        let path = scratch_path("mmap-basic");
        std::fs::write(&path, b"hello, mapping").unwrap();
        let file = File::open(&path).unwrap();
        let m = MappedFile::map(&file).unwrap();
        assert_eq!(m.as_slice(), b"hello, mapping");
        assert_eq!(m.len(), 14);
        assert!(!m.is_empty());
        if cfg!(unix) {
            assert!(m.is_mapped());
        }
        drop(m); // unmaps without error
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = scratch_path("mmap-empty");
        std::fs::write(&path, b"").unwrap();
        let file = File::open(&path).unwrap();
        let m = MappedFile::map(&file).unwrap();
        assert!(m.is_empty());
        assert!(!m.is_mapped());
        assert_eq!(m.as_slice(), b"");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapping_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MappedFile>();
    }
}
