//! Version payloads: a [`Document`] serialized as an `xarch_extmem` event
//! stream.
//!
//! The journal records the *input* of each commit — the version document —
//! not the merged archive state: replaying the documents through the same
//! deterministic merge rebuilds the exact pre-crash archive, and the blocks
//! stay valid even if the in-memory merge representation evolves. Reusing
//! the external archiver's small-node encoding means one on-disk grammar
//! across the system (keys and timestamps are simply absent here: the
//! payload tree is a plain document).

use xarch_extmem::{decode_small, encode_small, EKind, ETree, StreamError};
use xarch_xml::{Document, NodeId, NodeKind};

/// Encodes `doc` as one small-node event entry.
pub fn doc_to_bytes(doc: &Document) -> Vec<u8> {
    let tree = subtree(doc, doc.root());
    let mut out = Vec::new();
    encode_small(&tree, &mut out);
    out
}

fn subtree(doc: &Document, id: NodeId) -> ETree {
    match &doc.node(id).kind {
        NodeKind::Text(t) => ETree {
            kind: EKind::Text(t.clone()),
            sort_key: None,
            frontier: false,
            time: None,
            children: Vec::new(),
        },
        NodeKind::Element(s) => ETree {
            kind: EKind::Element {
                tag: doc.syms().resolve(*s).to_owned(),
                attrs: doc
                    .attrs(id)
                    .iter()
                    .map(|(a, v)| (doc.syms().resolve(*a).to_owned(), v.clone()))
                    .collect(),
            },
            sort_key: None,
            frontier: false,
            time: None,
            children: doc.children(id).iter().map(|&c| subtree(doc, c)).collect(),
        },
    }
}

/// Decodes a payload written by [`doc_to_bytes`] back into a [`Document`].
pub fn bytes_to_doc(buf: &[u8]) -> Result<Document, StreamError> {
    let mut pos = 0;
    let tree = decode_small(buf, &mut pos)?;
    if pos != buf.len() {
        return Err(StreamError::at(pos, "trailing bytes after version payload"));
    }
    let EKind::Element { tag, attrs } = &tree.kind else {
        return Err(StreamError::new("version payload root is not an element"));
    };
    let mut doc = Document::new(tag);
    let root = doc.root();
    for (a, v) in attrs {
        doc.set_attr(root, a, v);
    }
    for c in &tree.children {
        add_tree(&mut doc, root, c)?;
    }
    Ok(doc)
}

fn add_tree(doc: &mut Document, parent: NodeId, t: &ETree) -> Result<(), StreamError> {
    match &t.kind {
        EKind::Text(s) => {
            doc.add_text(parent, s);
        }
        EKind::Stamp => {
            return Err(StreamError::new(
                "stamp entry inside a version payload (payloads hold plain documents)",
            ));
        }
        EKind::Element { tag, attrs } => {
            let e = doc.add_element(parent, tag);
            for (a, v) in attrs {
                doc.set_attr(e, a, v);
            }
            for c in &t.children {
                add_tree(doc, e, c)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xarch_xml::parse;

    #[test]
    fn document_round_trips() {
        let doc = parse(
            "<db><rec a=\"1\" b=\"two\"><id>7</id><val>x &amp; y</val></rec><rec><id>8</id></rec></db>",
        )
        .unwrap();
        let bytes = doc_to_bytes(&doc);
        let back = bytes_to_doc(&bytes).unwrap();
        assert!(xarch_xml::value_equal(&doc, doc.root(), &back, back.root()));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let doc = parse("<db/>").unwrap();
        let mut bytes = doc_to_bytes(&doc);
        bytes.push(0xEE);
        assert!(bytes_to_doc(&bytes).is_err());
    }

    #[test]
    fn rejects_truncated_payload() {
        let doc = parse("<db><rec><id>1</id></rec></db>").unwrap();
        let bytes = doc_to_bytes(&doc);
        assert!(bytes_to_doc(&bytes[..bytes.len() - 3]).is_err());
    }
}
