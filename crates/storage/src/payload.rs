//! Version payloads: a [`Document`] serialized as an `xarch_extmem` event
//! stream.
//!
//! The journal records the *input* of each commit — the version document —
//! not the merged archive state: replaying the documents through the same
//! deterministic merge rebuilds the exact pre-crash archive, and the blocks
//! stay valid even if the in-memory merge representation evolves. Reusing
//! the external archiver's small-node encoding means one on-disk grammar
//! across the system (keys and timestamps are simply absent here: the
//! payload tree is a plain document).

use xarch_extmem::{decode_small, encode_small, get_varint, put_varint, EKind, ETree, StreamError};
use xarch_xml::{Document, NodeId, NodeKind};

/// Encodes `doc` as one small-node event entry.
pub fn doc_to_bytes(doc: &Document) -> Vec<u8> {
    let tree = subtree(doc, doc.root());
    let mut out = Vec::new();
    encode_small(&tree, &mut out);
    out
}

fn subtree(doc: &Document, id: NodeId) -> ETree {
    match &doc.node(id).kind {
        NodeKind::Text(t) => ETree {
            kind: EKind::Text(t.clone()),
            sort_key: None,
            frontier: false,
            time: None,
            children: Vec::new(),
        },
        NodeKind::Element(s) => ETree {
            kind: EKind::Element {
                tag: doc.syms().resolve(*s).to_owned(),
                attrs: doc
                    .attrs(id)
                    .iter()
                    .map(|(a, v)| (doc.syms().resolve(*a).to_owned(), v.clone()))
                    .collect(),
            },
            sort_key: None,
            frontier: false,
            time: None,
            children: doc.children(id).iter().map(|&c| subtree(doc, c)).collect(),
        },
    }
}

/// Decodes a payload written by [`doc_to_bytes`] back into a [`Document`].
pub fn bytes_to_doc(buf: &[u8]) -> Result<Document, StreamError> {
    let mut pos = 0;
    let tree = decode_small(buf, &mut pos)?;
    if pos != buf.len() {
        return Err(StreamError::at(pos, "trailing bytes after version payload"));
    }
    let EKind::Element { tag, attrs } = &tree.kind else {
        return Err(StreamError::new("version payload root is not an element"));
    };
    let mut doc = Document::new(tag);
    let root = doc.root();
    for (a, v) in attrs {
        doc.set_attr(root, a, v);
    }
    for c in &tree.children {
        add_tree(&mut doc, root, c)?;
    }
    Ok(doc)
}

fn add_tree(doc: &mut Document, parent: NodeId, t: &ETree) -> Result<(), StreamError> {
    match &t.kind {
        EKind::Text(s) => {
            doc.add_text(parent, s);
        }
        EKind::Stamp => {
            return Err(StreamError::new(
                "stamp entry inside a version payload (payloads hold plain documents)",
            ));
        }
        EKind::Element { tag, attrs } => {
            let e = doc.add_element(parent, tag);
            for (a, v) in attrs {
                doc.set_attr(e, a, v);
            }
            for c in &t.children {
                add_tree(doc, e, c)?;
            }
        }
    }
    Ok(())
}

/// Encodes a batch of version documents as one group-commit payload: a
/// varint count followed by length-prefixed [`doc_to_bytes`] payloads, so
/// the whole batch rides in a single checksummed block.
pub fn docs_to_batch_bytes(docs: &[Document]) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, docs.len() as u64);
    for doc in docs {
        let raw = doc_to_bytes(doc);
        put_varint(&mut out, raw.len() as u64);
        out.extend_from_slice(&raw);
    }
    out
}

/// Decodes a payload written by [`docs_to_batch_bytes`]. Offsets in errors
/// address the batch payload (the caller maps them to file offsets).
pub fn batch_bytes_to_docs(buf: &[u8]) -> Result<Vec<Document>, StreamError> {
    let mut pos = 0usize;
    let count = get_varint(buf, &mut pos)?;
    // every entry costs at least a length varint plus one payload byte,
    // so a count beyond half the buffer is provably rot — reject before
    // any allocation sized from untrusted input (and grow `docs` by
    // pushing, never by the declared count)
    if count > (buf.len() as u64) / 2 {
        return Err(StreamError::at(
            0,
            format!(
                "implausible batch count {count} for a {} byte payload",
                buf.len()
            ),
        ));
    }
    let mut docs = Vec::new();
    for _ in 0..count {
        let len_raw = get_varint(buf, &mut pos)?;
        let Ok(len) = usize::try_from(len_raw) else {
            return Err(StreamError::at(
                pos,
                "batch entry length exceeds address space",
            ));
        };
        let Some(end) = pos.checked_add(len).filter(|&e| e <= buf.len()) else {
            return Err(StreamError::at(pos, "truncated batch entry"));
        };
        let Some(entry) = buf.get(pos..end) else {
            return Err(StreamError::at(pos, "truncated batch entry"));
        };
        let doc = bytes_to_doc(entry).map_err(|e| StreamError {
            reason: e.reason,
            offset: Some(e.offset.unwrap_or(0) + pos as u64),
        })?;
        docs.push(doc);
        pos = end;
    }
    if pos != buf.len() {
        return Err(StreamError::at(pos, "trailing bytes after batch payload"));
    }
    Ok(docs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xarch_xml::parse;

    #[test]
    fn document_round_trips() {
        let doc = parse(
            "<db><rec a=\"1\" b=\"two\"><id>7</id><val>x &amp; y</val></rec><rec><id>8</id></rec></db>",
        )
        .unwrap();
        let bytes = doc_to_bytes(&doc);
        let back = bytes_to_doc(&bytes).unwrap();
        assert!(xarch_xml::value_equal(&doc, doc.root(), &back, back.root()));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let doc = parse("<db/>").unwrap();
        let mut bytes = doc_to_bytes(&doc);
        bytes.push(0xEE);
        assert!(bytes_to_doc(&bytes).is_err());
    }

    #[test]
    fn rejects_truncated_payload() {
        let doc = parse("<db><rec><id>1</id></rec></db>").unwrap();
        let bytes = doc_to_bytes(&doc);
        assert!(bytes_to_doc(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn batch_round_trips() {
        let docs: Vec<Document> = [
            "<db><rec><id>1</id><val>a</val></rec></db>",
            "<db/>",
            "<db><rec a=\"x\"><id>2</id></rec><rec><id>3</id></rec></db>",
        ]
        .iter()
        .map(|s| parse(s).unwrap())
        .collect();
        let bytes = docs_to_batch_bytes(&docs);
        let back = batch_bytes_to_docs(&bytes).unwrap();
        assert_eq!(back.len(), docs.len());
        for (a, b) in docs.iter().zip(&back) {
            assert!(xarch_xml::value_equal(a, a.root(), b, b.root()));
        }
        // the empty batch is representable and round-trips too
        assert!(batch_bytes_to_docs(&docs_to_batch_bytes(&[]))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn batch_rejects_corruption() {
        let docs = vec![parse("<db><rec><id>1</id></rec></db>").unwrap()];
        let bytes = docs_to_batch_bytes(&docs);
        assert!(batch_bytes_to_docs(&bytes[..bytes.len() - 2]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0xEE);
        assert!(batch_bytes_to_docs(&trailing).is_err());
        // implausible count
        let huge = {
            let mut b = Vec::new();
            put_varint(&mut b, u64::MAX - 3);
            b
        };
        assert!(batch_bytes_to_docs(&huge).is_err());
    }
}
