//! [`DurableArchive`]: persistence as a `VersionStore` wrapper.
//!
//! The inner store (in-memory, chunked, or external-memory) holds the
//! merged archive; the segment file journals every committed version.
//! `add_version` runs the merge first (so a rejected document leaves both
//! layers untouched), then appends one checksummed block and syncs before
//! acknowledging — after which the version survives a `kill -9`. On open,
//! the journaled version documents are replayed through the same
//! deterministic merge, rebuilding exactly the pre-crash archive.

use std::io::Write;
use std::ops::RangeInclusive;
use std::path::{Path, PathBuf};

use xarch_compress::BlockCodec;
use xarch_core::{
    ElementHistory, KeyQuery, RangeEntry, StoreError, StoreReader, StoreStats, TimeSet,
    VersionDelta, VersionStore,
};
use xarch_keys::KeySpec;
use xarch_obs::{Level, Obs};
use xarch_xml::Document;

use crate::block::{BlockKind, Scan, BLOCK_HEADER_LEN, MAX_PAYLOAD};
use crate::checkpoint::{decode_checkpoint, encode_checkpoint};
use crate::metrics::StorageMetrics;
use crate::payload::{batch_bytes_to_docs, bytes_to_doc, doc_to_bytes, docs_to_batch_bytes};
use crate::segment::{scan_block_at, scan_checkpoints, RecoveryStats, ResumeFrom, Segment};

/// Tuning knobs for a [`DurableArchive`].
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// Preferred payload codec. [`BlockCodec::Lzss`] trades commit CPU for
    /// smaller segments; blocks it cannot shrink are stored raw.
    pub compression: BlockCodec,
    /// Sync the file after every commit (default). Disabling trades
    /// crash safety for throughput: after a power loss, pages may persist
    /// out of append order, leaving an *interior* block corrupt — which
    /// reopen refuses to repair (it cannot be distinguished from bit rot
    /// on committed data). Use `false` only for rebuildable archives,
    /// tests, and benchmarks, or where the platform guarantees ordered
    /// writeback.
    pub sync: bool,
    /// Append a checkpoint block after every `n` committed versions
    /// (`None` or `Some(0)` disables checkpointing, the default).
    ///
    /// A checkpoint snapshots the inner backend's materialized state
    /// (see [`VersionStore::checkpoint_state`]); reopen then restores the
    /// newest intact snapshot and replays only the journal *tail* behind
    /// it, making reopen cost proportional to the cadence instead of the
    /// full history. Checkpoints are pure redundancy — a damaged one is
    /// loudly skipped in favor of an older snapshot or a full replay, so
    /// enabling them never weakens crash safety.
    pub checkpoint_every: Option<u32>,
}

impl Default for DurableOptions {
    fn default() -> Self {
        Self {
            compression: BlockCodec::Raw,
            sync: true,
            checkpoint_every: None,
        }
    }
}

/// A crash-safe, persistent [`VersionStore`] wrapping any other backend.
pub struct DurableArchive {
    inner: Box<dyn VersionStore>,
    segment: Segment,
    options: DurableOptions,
    recovery: RecoveryStats,
    /// File offset of the newest checkpoint block's header (0 = none;
    /// offset 0 is always inside the superblock). Back-chained into the
    /// next checkpoint's payload.
    last_checkpoint: u64,
    /// Versions covered by the newest checkpoint — the cadence counter
    /// compares `inner.latest()` against this.
    last_checkpoint_covered: u32,
    /// Set once the inner backend reported it cannot snapshot
    /// (`checkpoint_state()` returned `None`), so the cadence check stops
    /// re-asking on every commit.
    checkpoint_unsupported: bool,
    /// Set when a journal append failed *after* the inner merge committed:
    /// memory is then ahead of disk, so further commits are refused until
    /// the store is reopened (reads stay available).
    poisoned: Option<String>,
}

impl std::fmt::Debug for DurableArchive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableArchive")
            .field("path", &self.segment.path())
            .field("latest", &self.inner.latest())
            .field("options", &self.options)
            .field("recovery", &self.recovery)
            .finish()
    }
}

impl DurableArchive {
    /// Opens (or creates) the segment at `path` with default options,
    /// replaying any journaled versions into `inner`.
    pub fn open(path: impl AsRef<Path>, inner: Box<dyn VersionStore>) -> Result<Self, StoreError> {
        Self::open_with(path, DurableOptions::default(), inner)
    }

    /// Opens (or creates) the segment at `path`, replaying any journaled
    /// versions into `inner` — which must be freshly built (zero versions)
    /// and carry the same [`KeySpec`] the segment was created under.
    pub fn open_with(
        path: impl AsRef<Path>,
        options: DurableOptions,
        inner: Box<dyn VersionStore>,
    ) -> Result<Self, StoreError> {
        Self::open_impl(path, options, inner, StorageMetrics::detached())
    }

    /// [`DurableArchive::open_with`] reporting through `obs`: segment and
    /// recovery counters land in the registry under the canonical
    /// `segment.*` / `recovery.*` names, and recovery outcomes (torn-tail
    /// truncation, corrupt blocks, poisoning) are emitted as structured
    /// events the tracer's ring buffer keeps for post-mortems.
    pub fn open_observed(
        path: impl AsRef<Path>,
        options: DurableOptions,
        inner: Box<dyn VersionStore>,
        obs: &Obs,
    ) -> Result<Self, StoreError> {
        Self::open_impl(path, options, inner, StorageMetrics::registered(obs))
    }

    fn open_impl(
        path: impl AsRef<Path>,
        options: DurableOptions,
        inner: Box<dyn VersionStore>,
        metrics: StorageMetrics,
    ) -> Result<Self, StoreError> {
        let path: PathBuf = path.as_ref().to_owned();
        let mut inner = inner;
        if inner.latest() != 0 {
            return Err(StoreError::Backend(format!(
                "durable wrapper requires a fresh inner store (it already holds {} versions)",
                inner.latest()
            )));
        }
        let file_len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let expected_superblock = crate::superblock::encode(inner.spec())?;
        // A file shorter than its superblock *and* byte-identical to a
        // prefix of it is a create() torn by a crash: the superblock never
        // completed, so no version can have been committed — recreating is
        // safe. Anything else short-but-different is corruption and falls
        // through to Segment::open's loud failure.
        let torn_create = file_len > 0
            && file_len < expected_superblock.len() as u64
            && expected_superblock.starts_with(&std::fs::read(&path)?);
        if file_len == 0 || torn_create {
            let segment = Segment::create_observed(&path, inner.spec(), options.sync, metrics)?;
            return Ok(Self {
                inner,
                segment,
                options,
                recovery: RecoveryStats {
                    truncated_bytes: if torn_create { file_len } else { 0 },
                    ..RecoveryStats::default()
                },
                last_checkpoint: 0,
                last_checkpoint_covered: 0,
                checkpoint_unsupported: false,
                poisoned: None,
            });
        }
        let spec = inner.spec().clone();
        // Fast reopen: restore the newest intact checkpoint snapshot into
        // the (still empty) inner store, then have the segment scan skip
        // the journal prefix it covers. The pre-scan runs without the
        // write lock; open_observed_from re-verifies the chosen block
        // under the lock before trusting it. Every failure here falls
        // back — to an older snapshot, then to a full replay — because a
        // checkpoint is pure redundancy over the journal.
        let mut resume: Option<ResumeFrom> = None;
        for cand in scan_checkpoints(&path)
            .unwrap_or_default()
            .into_iter()
            .rev()
        {
            let verified = match scan_block_at(&path, cand.offset) {
                Ok(Scan::Block(b)) if b.header.kind == BlockKind::Checkpoint => b,
                // damaged or torn candidate: an older snapshot may be fine
                _ => continue,
            };
            let raw = match verified.header.codec {
                BlockCodec::Raw => verified.payload,
                codec => match codec.decode(&verified.payload) {
                    Some(raw) => raw,
                    None => continue,
                },
            };
            if raw.len() as u64 != verified.header.raw_len {
                continue;
            }
            let payload_at = cand.offset + BLOCK_HEADER_LEN as u64;
            let Ok(cp) = decode_checkpoint(&raw, payload_at) else {
                continue;
            };
            if cp.covered != verified.header.version {
                continue;
            }
            match inner.restore_checkpoint(&cp.state) {
                Ok(true) => {
                    resume = Some(ResumeFrom {
                        checkpoint_offset: cand.offset,
                        versions: cp.covered,
                    });
                    break;
                }
                // the snapshot is intact but belongs to a different
                // backend configuration — older snapshots would mismatch
                // the same way, so go straight to a full replay
                Ok(false) => break,
                // damaged state bytes: walk back to an older snapshot
                // (restore failures leave the inner store untouched)
                Err(_) => continue,
            }
        }
        // the newest checkpoint seen — restored or replayed over — so the
        // next checkpoint back-chains to it and the cadence counter
        // continues instead of restarting
        let mut last_cp: (u64, u32) = resume.map_or((0, 0), |r| (r.checkpoint_offset, r.versions));
        // replay happens inside the scan callback, so only one block's
        // payload is ever materialized — reopening stays within the inner
        // backend's working set even for external-memory stores
        let (segment, recovery) = Segment::open_observed_from(
            &path,
            &spec,
            options.sync,
            metrics,
            resume,
            |b| {
                let crate::block::ScannedBlock {
                    header,
                    payload,
                    offset,
                } = b;
                // raw blocks are already the decoded bytes — reuse the
                // scan's allocation instead of copying a third time
                let decode_payload = |payload: Vec<u8>| -> Result<Vec<u8>, StoreError> {
                    let raw = match header.codec {
                        BlockCodec::Raw => payload,
                        codec => codec.decode(&payload).ok_or_else(|| StoreError::Corrupt {
                            offset: offset + BLOCK_HEADER_LEN as u64,
                            reason: "block payload failed to decompress".into(),
                        })?,
                    };
                    if raw.len() as u64 != header.raw_len {
                        return Err(StoreError::Corrupt {
                            offset,
                            reason: format!(
                                "decompressed payload is {} bytes, header says {}",
                                raw.len(),
                                header.raw_len
                            ),
                        });
                    }
                    Ok(raw)
                };
                // e.offset addresses the *decoded* payload, which only
                // coincides with file bytes for raw blocks — keep the block's
                // file offset and say where the decode failed in the reason
                let decode_err = |e: xarch_extmem::StreamError| {
                    let reason = match e.offset {
                        Some(p) => format!("{} (byte {p} of the decoded payload)", e.reason),
                        None => e.reason,
                    };
                    StoreError::Corrupt { offset, reason }
                };
                let (replayed, committed) = match header.kind {
                    BlockKind::Checkpoint => {
                        // nothing to replay — the snapshot duplicates
                        // journal state — but remember it so the next
                        // checkpoint back-chains to it and the cadence
                        // counter continues instead of restarting
                        last_cp = (offset, header.version);
                        return Ok(0);
                    }
                    BlockKind::Empty => (inner.add_empty_version()?, 1u32),
                    BlockKind::Version => {
                        let raw = decode_payload(payload)?;
                        let doc = bytes_to_doc(&raw).map_err(decode_err)?;
                        (inner.add_version(&doc)?, 1)
                    }
                    BlockKind::Batch => {
                        // a verified batch block replays atomically through
                        // the inner store's own batch fast path, so reopening
                        // restores exactly the group-committed state
                        let raw = decode_payload(payload)?;
                        let docs = batch_bytes_to_docs(&raw).map_err(decode_err)?;
                        if docs.is_empty() {
                            return Err(StoreError::Corrupt {
                                offset,
                                reason: "batch block with zero versions".into(),
                            });
                        }
                        let assigned = inner.add_versions(&docs)?;
                        let Some(first) = assigned.first().copied() else {
                            return Err(StoreError::Corrupt {
                                offset,
                                reason: "inner store assigned no versions for a non-empty batch"
                                    .into(),
                            });
                        };
                        let count =
                            u32::try_from(assigned.len()).map_err(|_| StoreError::Corrupt {
                                offset,
                                reason: "batch version count exceeds u32".into(),
                            })?;
                        (first, count)
                    }
                };
                if replayed != header.version {
                    return Err(StoreError::Corrupt {
                    offset,
                    reason: format!(
                        "replay desynchronized: block commits version {}, store assigned {replayed}",
                        header.version
                    ),
                });
                }
                Ok(committed)
            },
        )?;
        Ok(Self {
            inner,
            segment,
            options,
            recovery,
            last_checkpoint: last_cp.0,
            last_checkpoint_covered: last_cp.1,
            checkpoint_unsupported: false,
            poisoned: None,
        })
    }

    /// What `open` found and did while rebuilding from the segment file.
    pub fn recovery(&self) -> RecoveryStats {
        self.recovery
    }

    /// File offset of the newest checkpoint block, or `None` when the
    /// segment holds no checkpoint yet.
    pub fn last_checkpoint_offset(&self) -> Option<u64> {
        (self.last_checkpoint != 0).then_some(self.last_checkpoint)
    }

    /// Checkpoint blocks appended through this handle (through this
    /// *registry* when the archive was opened observed against a shared
    /// one).
    pub fn checkpoints_written(&self) -> u64 {
        self.segment.metrics().checkpoints_written.get()
    }

    /// The segment file's path.
    pub fn path(&self) -> &Path {
        self.segment.path()
    }

    /// Current size of the segment file in bytes.
    pub fn journal_bytes(&self) -> u64 {
        self.segment.len_bytes()
    }

    /// Journal blocks appended by this handle — one per `add_version` /
    /// `add_empty_version`, one per whole `add_versions` batch.
    pub fn journal_blocks(&self) -> u64 {
        self.segment.blocks_appended()
    }

    /// fsyncs issued by this handle — group commit's measurable effect is
    /// exactly one per batch instead of one per version.
    pub fn journal_syncs(&self) -> u64 {
        self.segment.syncs_issued()
    }

    /// True when a journal append failed after its merge committed: the
    /// in-memory archive is ahead of the durable journal and further
    /// commits are refused. Reopen from the path to resynchronize (the
    /// unjournaled version is discarded, as it was never acknowledged).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Record that memory ran ahead of disk: further commits are refused
    /// and the event lands in the tracer's ring buffer for post-mortems.
    fn poison(&mut self, why: String) {
        self.segment
            .metrics()
            .event(Level::Error, "durable.poisoned", &[("why", why.clone())]);
        self.poisoned = Some(why);
    }

    fn check_writable(&self) -> Result<(), StoreError> {
        match &self.poisoned {
            None => Ok(()),
            Some(why) => Err(StoreError::Backend(format!(
                "durable store refused the commit: a previous journal append failed ({why}); \
                 reopen the archive from {} to resynchronize",
                self.segment.path().display()
            ))),
        }
    }

    /// Journals an already-merged commit, poisoning the store if the
    /// append fails (memory would otherwise silently run ahead of disk).
    fn journal(
        &mut self,
        kind: BlockKind,
        codec: BlockCodec,
        version: u32,
        raw_len: u64,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        match self.segment.append(kind, codec, version, raw_len, payload) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.poison(e.to_string());
                Err(e)
            }
        }
    }

    /// Journals an already-merged batch as one group-commit block — a
    /// single append and a single fsync — poisoning the store if the
    /// append fails.
    fn journal_batch(
        &mut self,
        codec: BlockCodec,
        first_version: u32,
        count: u32,
        raw_len: u64,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        match self
            .segment
            .append_batch(codec, first_version, count, raw_len, payload)
        {
            Ok(()) => Ok(()),
            Err(e) => {
                self.poison(e.to_string());
                Err(e)
            }
        }
    }

    /// Appends a checkpoint block if the configured cadence is due.
    ///
    /// Runs *after* the triggering commit is durable, so a checkpoint
    /// problem never fails that commit: an unsupported or unreadable inner
    /// snapshot just skips the checkpoint (with a traced event), while a
    /// failed *append* poisons the handle — the segment tail may be torn,
    /// and reopen will truncate it back to the committed prefix.
    fn maybe_checkpoint(&mut self) {
        let every = match self.options.checkpoint_every {
            Some(n) if n > 0 => n,
            _ => return,
        };
        if self.checkpoint_unsupported || self.poisoned.is_some() {
            return;
        }
        let covered = self.inner.latest();
        if covered.saturating_sub(self.last_checkpoint_covered) < every {
            return;
        }
        let state = match self.inner.checkpoint_state() {
            Ok(Some(state)) => state,
            Ok(None) => {
                self.checkpoint_unsupported = true;
                self.segment.metrics().event(
                    Level::Warn,
                    "durable.checkpoint_unsupported",
                    &[("backend", "inner store cannot snapshot".into())],
                );
                return;
            }
            Err(e) => {
                self.segment.metrics().event(
                    Level::Error,
                    "durable.checkpoint_skipped",
                    &[("why", e.to_string())],
                );
                return;
            }
        };
        let raw = encode_checkpoint(self.last_checkpoint, covered, &state);
        if raw.len() as u64 > MAX_PAYLOAD {
            self.segment.metrics().event(
                Level::Warn,
                "durable.checkpoint_skipped",
                &[(
                    "why",
                    format!("{}-byte snapshot exceeds block limit", raw.len()),
                )],
            );
            return;
        }
        let (codec, payload) = self.options.compression.encode(&raw);
        match self
            .segment
            .append_checkpoint(codec, raw.len() as u64, &payload)
        {
            Ok(offset) => {
                self.last_checkpoint = offset;
                self.last_checkpoint_covered = covered;
            }
            Err(e) => self.poison(format!("checkpoint append failed: {e}")),
        }
    }
}

impl StoreReader for DurableArchive {
    fn spec(&self) -> &KeySpec {
        self.inner.spec()
    }

    fn latest(&self) -> u32 {
        self.inner.latest()
    }

    fn has_version(&self, v: u32) -> bool {
        self.inner.has_version(v)
    }

    // Reads delegate straight to the wrapped store with no journal
    // involvement (and, behind a shared handle, no write lock): the
    // segment file only matters at commit and open time.

    fn retrieve(&self, v: u32) -> Result<Option<Document>, StoreError> {
        self.inner.retrieve(v)
    }

    fn retrieve_into(&self, v: u32, out: &mut dyn Write) -> Result<bool, StoreError> {
        self.inner.retrieve_into(v, out)
    }

    fn history(&self, steps: &[KeyQuery]) -> Result<Option<TimeSet>, StoreError> {
        self.inner.history(steps)
    }

    fn stats(&self) -> Result<StoreStats, StoreError> {
        self.inner.stats()
    }

    fn stats_at(&self, v: u32) -> Result<StoreStats, StoreError> {
        self.inner.stats_at(v)
    }

    // Temporal queries delegate to the inner store rather than taking the
    // trait's whole-retrieve defaults: when the wrapped backend is
    // indexed, its indexes are re-established *during* journal replay (the
    // same incremental `add_version` path that maintains them live), so a
    // reopened archive answers queries without any per-query rebuild.

    fn as_of(&self, steps: &[KeyQuery], v: u32) -> Result<Option<Document>, StoreError> {
        self.inner.as_of(steps, v)
    }

    fn history_values(&self, steps: &[KeyQuery]) -> Result<Option<ElementHistory>, StoreError> {
        self.inner.history_values(steps)
    }

    fn range(
        &self,
        prefix: &[KeyQuery],
        versions: RangeInclusive<u32>,
    ) -> Result<Vec<RangeEntry>, StoreError> {
        self.inner.range(prefix, versions)
    }

    fn diff(&self, steps: &[KeyQuery], v1: u32, v2: u32) -> Result<VersionDelta, StoreError> {
        self.inner.diff(steps, v1, v2)
    }
}

impl VersionStore for DurableArchive {
    fn add_version(&mut self, doc: &Document) -> Result<u32, StoreError> {
        self.check_writable()?;
        // encode and size-check up front: everything that can be rejected
        // without touching state is rejected *before* the merge, so an
        // error here never leaves memory ahead of disk
        let raw = doc_to_bytes(doc);
        if raw.len() as u64 > MAX_PAYLOAD {
            return Err(StoreError::Backend(format!(
                "version payload of {} bytes exceeds the {MAX_PAYLOAD} byte block limit",
                raw.len()
            )));
        }
        // merge next: a rejected document leaves the store unchanged and
        // nothing invalid reaches the journal
        let v = self.inner.add_version(doc)?;
        let (codec, payload) = self.options.compression.encode(&raw);
        self.journal(BlockKind::Version, codec, v, raw.len() as u64, &payload)?;
        self.maybe_checkpoint();
        Ok(v)
    }

    fn add_empty_version(&mut self) -> Result<u32, StoreError> {
        self.check_writable()?;
        let v = self.inner.add_empty_version()?;
        self.journal(BlockKind::Empty, BlockCodec::Raw, v, 0, &[])?;
        self.maybe_checkpoint();
        Ok(v)
    }

    /// Group commit: the whole batch is merged through the inner store's
    /// batch fast path and journaled as ONE length-prefixed multi-version
    /// block — one append, one commit word, **one fsync** — so either the
    /// entire batch survives a crash or none of it does. An empty batch
    /// writes nothing.
    fn add_versions(&mut self, docs: &[Document]) -> Result<Vec<u32>, StoreError> {
        if docs.is_empty() {
            return Ok(Vec::new());
        }
        if let [single] = docs {
            // one version = one plain block; group commit adds nothing
            return Ok(vec![self.add_version(single)?]);
        }
        self.check_writable()?;
        // encode and size-check up front, before any state moves
        let raw = docs_to_batch_bytes(docs);
        if raw.len() as u64 > MAX_PAYLOAD {
            return Err(StoreError::Backend(format!(
                "batch payload of {} bytes exceeds the {MAX_PAYLOAD} byte block limit \
                 (split the batch)",
                raw.len()
            )));
        }
        let before = self.inner.latest();
        let assigned = match self.inner.add_versions(docs) {
            Ok(assigned) => assigned,
            Err(e) => {
                // native inner backends validate the batch before mutating
                // anything; if a foreign backend stopped part-way, memory
                // is ahead of the journal and commits must stop
                if self.inner.latest() != before {
                    self.poison(format!(
                        "batch merge failed after applying part of the batch: {e}"
                    ));
                }
                return Err(e);
            }
        };
        debug_assert_eq!(assigned.first().copied(), Some(before + 1));
        debug_assert_eq!(assigned.len(), docs.len());
        let count = u32::try_from(assigned.len()).map_err(|_| {
            StoreError::Backend(format!(
                "batch of {} versions exceeds the u32 version space",
                assigned.len()
            ))
        })?;
        let (codec, payload) = self.options.compression.encode(&raw);
        self.journal_batch(codec, before + 1, count, raw.len() as u64, &payload)?;
        self.maybe_checkpoint();
        Ok(assigned)
    }

    fn checkpoint_state(&self) -> Result<Option<Vec<u8>>, StoreError> {
        self.inner.checkpoint_state()
    }

    /// Always refuses: restoring state into a durable store without
    /// journaling it would leave memory ahead of disk. Checkpoints flow
    /// through the segment file instead — reopen from the path restores
    /// the newest snapshot automatically.
    fn restore_checkpoint(&mut self, _state: &[u8]) -> Result<bool, StoreError> {
        Err(StoreError::Backend(
            "durable stores restore checkpoints through reopen, not restore_checkpoint \
             (the snapshot must come from the journal it covers)"
                .into(),
        ))
    }

    /// Forks only the wrapped in-memory store: reads never touch the
    /// journal, so the replica answers byte-identically, while the journal
    /// and its fsyncs stay single-copy on the durable instance. The
    /// shared handle applies every commit to the durable instance first
    /// (and publishes only after it lands), so the replica never holds a
    /// version that could vanish on crash.
    fn fork(&self) -> Result<Box<dyn VersionStore>, StoreError> {
        self.inner.fork()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch_path;
    use xarch_core::Archive;
    use xarch_xml::parse;

    fn spec() -> KeySpec {
        KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))\n(/db/rec, (val, {}))").unwrap()
    }

    fn fresh_inner() -> Box<dyn VersionStore> {
        Box::new(Archive::new(spec()))
    }

    #[test]
    fn durable_archive_is_shareable_across_threads() {
        // reads bypass the journal entirely (segment state only matters
        // at commit/open), so a durable store can serve reader threads
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DurableArchive>();
    }

    #[test]
    fn versions_survive_reopen() {
        let path = scratch_path("durable-reopen");
        let v1 = parse("<db><rec><id>1</id><val>a</val></rec></db>").unwrap();
        let v2 = parse("<db><rec><id>1</id><val>b</val></rec></db>").unwrap();
        {
            let mut d = DurableArchive::open(&path, fresh_inner()).unwrap();
            assert_eq!(d.add_version(&v1).unwrap(), 1);
            assert_eq!(d.add_version(&v2).unwrap(), 2);
        } // dropped without any shutdown protocol — every commit is already on disk
        let d = DurableArchive::open(&path, fresh_inner()).unwrap();
        assert_eq!(d.latest(), 2);
        assert_eq!(d.recovery().versions_recovered, 2);
        let got = d.retrieve(1).unwrap().unwrap();
        assert!(xarch_core::equiv_modulo_key_order(&got, &v1, d.spec()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_versions_survive_reopen() {
        let path = scratch_path("durable-empty");
        let v1 = parse("<db><rec><id>1</id><val>a</val></rec></db>").unwrap();
        {
            let mut d = DurableArchive::open(&path, fresh_inner()).unwrap();
            d.add_version(&v1).unwrap();
            assert_eq!(d.add_empty_version().unwrap(), 2);
        }
        let d = DurableArchive::open(&path, fresh_inner()).unwrap();
        assert_eq!(d.latest(), 2);
        assert!(d.has_version(2));
        assert!(d.retrieve(2).unwrap().is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_create_is_recreated_not_bricked() {
        // a crash mid-way through the very first superblock write leaves a
        // prefix of the superblock on disk; nothing was ever committed, so
        // open must recreate rather than fail forever
        let path = scratch_path("durable-torn-create");
        let full = crate::superblock::encode(&spec()).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let mut d = DurableArchive::open(&path, fresh_inner()).unwrap();
        assert_eq!(d.latest(), 0);
        assert!(d.recovery().recovered_torn_tail());
        let v1 = parse("<db><rec><id>1</id><val>a</val></rec></db>").unwrap();
        d.add_version(&v1).unwrap();
        drop(d);
        let d = DurableArchive::open(&path, fresh_inner()).unwrap();
        assert_eq!(d.latest(), 1);
        std::fs::remove_file(&path).unwrap();

        // a short file that is NOT a superblock prefix is corruption, not
        // a torn create — it must fail loudly
        let path = scratch_path("durable-short-garbage");
        std::fs::write(&path, b"not a segment").unwrap();
        let err = DurableArchive::open(&path, fresh_inner())
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn second_concurrent_open_is_refused() {
        // two live handles on one journal would overwrite each other's
        // acknowledged commits; the OS lock makes the segment single-writer
        let path = scratch_path("durable-lock");
        let d1 = DurableArchive::open(&path, fresh_inner()).unwrap();
        let err = DurableArchive::open(&path, fresh_inner())
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("already open"), "{err}");
        drop(d1); // the lock dies with the handle…
        let d2 = DurableArchive::open(&path, fresh_inner()).unwrap();
        assert_eq!(d2.latest(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_populated_inner() {
        let path = scratch_path("durable-populated");
        let mut inner = Archive::new(spec());
        inner
            .add_version(&parse("<db><rec><id>1</id></rec></db>").unwrap())
            .unwrap();
        let err = DurableArchive::open(&path, Box::new(inner)).unwrap_err();
        assert!(err.to_string().contains("fresh inner store"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn group_commit_is_one_block_and_survives_reopen() {
        let path = scratch_path("durable-batch");
        let docs: Vec<xarch_xml::Document> = [
            "<db><rec><id>1</id><val>a</val></rec></db>",
            "<db><rec><id>1</id><val>b</val></rec><rec><id>2</id><val>c</val></rec></db>",
            "<db><rec><id>2</id><val>c</val></rec></db>",
        ]
        .iter()
        .map(|s| parse(s).unwrap())
        .collect();
        {
            let mut d = DurableArchive::open(&path, fresh_inner()).unwrap();
            let before = d.journal_bytes();
            assert_eq!(d.add_versions(&docs).unwrap(), vec![1, 2, 3]);
            // the whole batch is ONE block: header + batch payload + trailer
            let raw = crate::payload::docs_to_batch_bytes(&docs);
            assert_eq!(
                d.journal_bytes() - before,
                (BLOCK_HEADER_LEN + raw.len() + crate::block::BLOCK_TRAILER_LEN) as u64
            );
            // empty batches write nothing and burn no version
            let mark = d.journal_bytes();
            assert_eq!(d.add_versions(&[]).unwrap(), Vec::<u32>::new());
            assert_eq!(d.journal_bytes(), mark);
            assert_eq!(d.latest(), 3);
        }
        let d = DurableArchive::open(&path, fresh_inner()).unwrap();
        assert_eq!(d.latest(), 3);
        assert_eq!(d.recovery().versions_recovered, 3);
        for (i, doc) in docs.iter().enumerate() {
            let got = d.retrieve(i as u32 + 1).unwrap().unwrap();
            assert!(xarch_core::equiv_modulo_key_order(&got, doc, d.spec()));
        }
        // appending continues cleanly after a replayed batch
        let mut d = d;
        assert_eq!(d.add_version(&docs[0]).unwrap(), 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejected_batch_leaves_durable_store_unchanged() {
        let path = scratch_path("durable-batch-reject");
        let mut d = DurableArchive::open(&path, fresh_inner()).unwrap();
        d.add_version(&parse("<db><rec><id>1</id><val>a</val></rec></db>").unwrap())
            .unwrap();
        let journal = d.journal_bytes();
        let batch = vec![
            parse("<db><rec><id>2</id><val>b</val></rec></db>").unwrap(),
            parse("<nope><x>1</x></nope>").unwrap(),
        ];
        assert!(d.add_versions(&batch).is_err());
        assert_eq!(d.latest(), 1, "rejected batch burned a version");
        assert_eq!(d.journal_bytes(), journal, "rejected batch reached disk");
        assert!(!d.is_poisoned(), "validation failures must not poison");
        assert_eq!(d.add_version(&batch[0]).unwrap(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    fn doc_n(n: u32) -> xarch_xml::Document {
        parse(&format!("<db><rec><id>1</id><val>v{n}</val></rec></db>")).unwrap()
    }

    #[test]
    fn checkpointed_reopen_restores_snapshot_and_replays_only_the_tail() {
        let path = scratch_path("durable-checkpointed");
        let opts = DurableOptions {
            checkpoint_every: Some(2),
            ..DurableOptions::default()
        };
        {
            let mut d = DurableArchive::open_with(&path, opts, fresh_inner()).unwrap();
            for n in 1..=5 {
                d.add_version(&doc_n(n)).unwrap();
            }
            // cadence 2 over 5 versions: checkpoints after v2 and v4
            assert_eq!(d.checkpoints_written(), 2);
            assert!(d.last_checkpoint_offset().is_some());
        }
        let d = DurableArchive::open_with(&path, opts, fresh_inner()).unwrap();
        let rec = d.recovery();
        assert!(rec.checkpoint_loaded, "newest checkpoint must be restored");
        assert_eq!(rec.versions_recovered, 5);
        // only v5 sits behind the checkpoint covering v4
        assert_eq!(rec.tail_blocks_replayed, 1);
        for n in 1..=5 {
            let got = d.retrieve(n).unwrap().unwrap();
            assert!(xarch_core::equiv_modulo_key_order(
                &got,
                &doc_n(n),
                d.spec()
            ));
        }
        // the cadence counter resumed: v6 completes a new 2-version stride
        let mut d = d;
        d.add_version(&doc_n(6)).unwrap();
        assert_eq!(d.checkpoints_written(), 1, "one new checkpoint after v6");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_blocks_are_transparent_to_a_full_replay() {
        // reopening with checkpointing disabled must still work on a
        // segment that holds checkpoint blocks (full replay steps over
        // them), and the reopened state must match a checkpointed reopen
        let path = scratch_path("durable-cp-fullreplay");
        let opts = DurableOptions {
            checkpoint_every: Some(1),
            ..DurableOptions::default()
        };
        {
            let mut d = DurableArchive::open_with(&path, opts, fresh_inner()).unwrap();
            for n in 1..=3 {
                d.add_version(&doc_n(n)).unwrap();
            }
        }
        // an inner store that refuses snapshots forces the full-replay path
        struct NoSnapshot(Archive);
        impl StoreReader for NoSnapshot {
            fn spec(&self) -> &KeySpec {
                self.0.spec()
            }
            fn latest(&self) -> u32 {
                self.0.latest()
            }
            fn retrieve(&self, v: u32) -> Result<Option<Document>, StoreError> {
                StoreReader::retrieve(&self.0, v)
            }
            fn retrieve_into(&self, v: u32, out: &mut dyn Write) -> Result<bool, StoreError> {
                StoreReader::retrieve_into(&self.0, v, out)
            }
            fn history(&self, steps: &[KeyQuery]) -> Result<Option<TimeSet>, StoreError> {
                StoreReader::history(&self.0, steps)
            }
            fn stats(&self) -> Result<StoreStats, StoreError> {
                StoreReader::stats(&self.0)
            }
        }
        impl VersionStore for NoSnapshot {
            fn add_version(&mut self, doc: &Document) -> Result<u32, StoreError> {
                VersionStore::add_version(&mut self.0, doc)
            }
            fn add_empty_version(&mut self) -> Result<u32, StoreError> {
                VersionStore::add_empty_version(&mut self.0)
            }
        }
        let d = DurableArchive::open_with(&path, opts, Box::new(NoSnapshot(Archive::new(spec()))))
            .unwrap();
        assert!(!d.recovery().checkpoint_loaded);
        assert_eq!(d.recovery().versions_recovered, 3);
        assert_eq!(d.recovery().tail_blocks_replayed, 3);
        for n in 1..=3 {
            let got = d.retrieve(n).unwrap().unwrap();
            assert!(xarch_core::equiv_modulo_key_order(
                &got,
                &doc_n(n),
                d.spec()
            ));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn durable_restore_checkpoint_is_refused() {
        let path = scratch_path("durable-no-direct-restore");
        let mut d = DurableArchive::open(&path, fresh_inner()).unwrap();
        let err = d.restore_checkpoint(&[]).unwrap_err();
        assert!(err.to_string().contains("reopen"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lzss_blocks_round_trip() {
        let path = scratch_path("durable-lzss");
        let opts = DurableOptions {
            compression: BlockCodec::Lzss,
            sync: true,
            checkpoint_every: None,
        };
        let mut src = String::from("<db>");
        for i in 0..40 {
            src.push_str(&format!(
                "<rec><id>{i}</id><val>common text body</val></rec>"
            ));
        }
        src.push_str("</db>");
        let doc = parse(&src).unwrap();
        let raw_len = crate::payload::doc_to_bytes(&doc).len() as u64;
        {
            let mut d = DurableArchive::open_with(&path, opts, fresh_inner()).unwrap();
            d.add_version(&doc).unwrap();
            // the repetitive payload must actually have been compressed
            assert!(d.journal_bytes() < raw_len);
        }
        let d = DurableArchive::open_with(&path, opts, fresh_inner()).unwrap();
        let got = d.retrieve(1).unwrap().unwrap();
        assert!(xarch_core::equiv_modulo_key_order(&got, &doc, d.spec()));
        std::fs::remove_file(&path).unwrap();
    }
}
