//! [`DurableArchive`]: persistence as a `VersionStore` wrapper.
//!
//! The inner store (in-memory, chunked, or external-memory) holds the
//! merged archive; the segment file journals every committed version.
//! `add_version` runs the merge first (so a rejected document leaves both
//! layers untouched), then appends one checksummed block and syncs before
//! acknowledging — after which the version survives a `kill -9`. On open,
//! the journaled version documents are replayed through the same
//! deterministic merge, rebuilding exactly the pre-crash archive.

use std::io::Write;
use std::ops::RangeInclusive;
use std::path::{Path, PathBuf};

use xarch_compress::BlockCodec;
use xarch_core::{
    ElementHistory, KeyQuery, RangeEntry, StoreError, StoreReader, StoreStats, TimeSet,
    VersionDelta, VersionStore,
};
use xarch_keys::KeySpec;
use xarch_xml::Document;

use crate::block::{BlockKind, BLOCK_HEADER_LEN, MAX_PAYLOAD};
use crate::payload::{bytes_to_doc, doc_to_bytes};
use crate::segment::{RecoveryStats, Segment};

/// Tuning knobs for a [`DurableArchive`].
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// Preferred payload codec. [`BlockCodec::Lzss`] trades commit CPU for
    /// smaller segments; blocks it cannot shrink are stored raw.
    pub compression: BlockCodec,
    /// Sync the file after every commit (default). Disabling trades
    /// crash safety for throughput: after a power loss, pages may persist
    /// out of append order, leaving an *interior* block corrupt — which
    /// reopen refuses to repair (it cannot be distinguished from bit rot
    /// on committed data). Use `false` only for rebuildable archives,
    /// tests, and benchmarks, or where the platform guarantees ordered
    /// writeback.
    pub sync: bool,
}

impl Default for DurableOptions {
    fn default() -> Self {
        Self {
            compression: BlockCodec::Raw,
            sync: true,
        }
    }
}

/// A crash-safe, persistent [`VersionStore`] wrapping any other backend.
pub struct DurableArchive {
    inner: Box<dyn VersionStore>,
    segment: Segment,
    options: DurableOptions,
    recovery: RecoveryStats,
    /// Set when a journal append failed *after* the inner merge committed:
    /// memory is then ahead of disk, so further commits are refused until
    /// the store is reopened (reads stay available).
    poisoned: Option<String>,
}

impl std::fmt::Debug for DurableArchive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableArchive")
            .field("path", &self.segment.path())
            .field("latest", &self.inner.latest())
            .field("options", &self.options)
            .field("recovery", &self.recovery)
            .finish()
    }
}

impl DurableArchive {
    /// Opens (or creates) the segment at `path` with default options,
    /// replaying any journaled versions into `inner`.
    pub fn open(path: impl AsRef<Path>, inner: Box<dyn VersionStore>) -> Result<Self, StoreError> {
        Self::open_with(path, DurableOptions::default(), inner)
    }

    /// Opens (or creates) the segment at `path`, replaying any journaled
    /// versions into `inner` — which must be freshly built (zero versions)
    /// and carry the same [`KeySpec`] the segment was created under.
    pub fn open_with(
        path: impl AsRef<Path>,
        options: DurableOptions,
        inner: Box<dyn VersionStore>,
    ) -> Result<Self, StoreError> {
        let path: PathBuf = path.as_ref().to_owned();
        let mut inner = inner;
        if inner.latest() != 0 {
            return Err(StoreError::Backend(format!(
                "durable wrapper requires a fresh inner store (it already holds {} versions)",
                inner.latest()
            )));
        }
        let file_len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let expected_superblock = crate::superblock::encode(inner.spec());
        // A file shorter than its superblock *and* byte-identical to a
        // prefix of it is a create() torn by a crash: the superblock never
        // completed, so no version can have been committed — recreating is
        // safe. Anything else short-but-different is corruption and falls
        // through to Segment::open's loud failure.
        let torn_create = file_len > 0
            && (file_len as usize) < expected_superblock.len()
            && expected_superblock.starts_with(&std::fs::read(&path)?);
        if file_len == 0 || torn_create {
            let segment = Segment::create(&path, inner.spec(), options.sync)?;
            return Ok(Self {
                inner,
                segment,
                options,
                recovery: RecoveryStats {
                    truncated_bytes: if torn_create { file_len } else { 0 },
                    ..RecoveryStats::default()
                },
                poisoned: None,
            });
        }
        let spec = inner.spec().clone();
        // replay happens inside the scan callback, so only one block's
        // payload is ever materialized — reopening stays within the inner
        // backend's working set even for external-memory stores
        let (segment, recovery) = Segment::open(&path, &spec, options.sync, |b| {
            let crate::block::ScannedBlock {
                header,
                payload,
                offset,
            } = b;
            let replayed = match header.kind {
                BlockKind::Empty => inner.add_empty_version()?,
                BlockKind::Version => {
                    // raw blocks are already the decoded bytes — reuse the
                    // scan's allocation instead of copying a third time
                    let raw = match header.codec {
                        BlockCodec::Raw => payload,
                        codec => codec.decode(&payload).ok_or_else(|| StoreError::Corrupt {
                            offset: offset + BLOCK_HEADER_LEN as u64,
                            reason: "block payload failed to decompress".into(),
                        })?,
                    };
                    if raw.len() as u64 != header.raw_len {
                        return Err(StoreError::Corrupt {
                            offset,
                            reason: format!(
                                "decompressed payload is {} bytes, header says {}",
                                raw.len(),
                                header.raw_len
                            ),
                        });
                    }
                    let doc = bytes_to_doc(&raw).map_err(|e| {
                        // e.offset addresses the *decoded* payload, which
                        // only coincides with file bytes for raw blocks —
                        // keep the block's file offset and say where the
                        // decode failed in the reason
                        let reason = match e.offset {
                            Some(p) => {
                                format!("{} (byte {p} of the decoded payload)", e.reason)
                            }
                            None => e.reason,
                        };
                        StoreError::Corrupt { offset, reason }
                    })?;
                    inner.add_version(&doc)?
                }
            };
            if replayed != header.version {
                return Err(StoreError::Corrupt {
                    offset,
                    reason: format!(
                        "replay desynchronized: block commits version {}, store assigned {replayed}",
                        header.version
                    ),
                });
            }
            Ok(())
        })?;
        Ok(Self {
            inner,
            segment,
            options,
            recovery,
            poisoned: None,
        })
    }

    /// What `open` found and did while rebuilding from the segment file.
    pub fn recovery(&self) -> RecoveryStats {
        self.recovery
    }

    /// The segment file's path.
    pub fn path(&self) -> &Path {
        self.segment.path()
    }

    /// Current size of the segment file in bytes.
    pub fn journal_bytes(&self) -> u64 {
        self.segment.len_bytes()
    }

    /// True when a journal append failed after its merge committed: the
    /// in-memory archive is ahead of the durable journal and further
    /// commits are refused. Reopen from the path to resynchronize (the
    /// unjournaled version is discarded, as it was never acknowledged).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    fn check_writable(&self) -> Result<(), StoreError> {
        match &self.poisoned {
            None => Ok(()),
            Some(why) => Err(StoreError::Backend(format!(
                "durable store refused the commit: a previous journal append failed ({why}); \
                 reopen the archive from {} to resynchronize",
                self.segment.path().display()
            ))),
        }
    }

    /// Journals an already-merged commit, poisoning the store if the
    /// append fails (memory would otherwise silently run ahead of disk).
    fn journal(
        &mut self,
        kind: BlockKind,
        codec: BlockCodec,
        version: u32,
        raw_len: u64,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        match self.segment.append(kind, codec, version, raw_len, payload) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.poisoned = Some(e.to_string());
                Err(e)
            }
        }
    }
}

impl StoreReader for DurableArchive {
    fn spec(&self) -> &KeySpec {
        self.inner.spec()
    }

    fn latest(&self) -> u32 {
        self.inner.latest()
    }

    fn has_version(&self, v: u32) -> bool {
        self.inner.has_version(v)
    }

    // Reads delegate straight to the wrapped store with no journal
    // involvement (and, behind a shared handle, no write lock): the
    // segment file only matters at commit and open time.

    fn retrieve(&self, v: u32) -> Result<Option<Document>, StoreError> {
        self.inner.retrieve(v)
    }

    fn retrieve_into(&self, v: u32, out: &mut dyn Write) -> Result<bool, StoreError> {
        self.inner.retrieve_into(v, out)
    }

    fn history(&self, steps: &[KeyQuery]) -> Result<Option<TimeSet>, StoreError> {
        self.inner.history(steps)
    }

    fn stats(&self) -> Result<StoreStats, StoreError> {
        self.inner.stats()
    }

    // Temporal queries delegate to the inner store rather than taking the
    // trait's whole-retrieve defaults: when the wrapped backend is
    // indexed, its indexes are re-established *during* journal replay (the
    // same incremental `add_version` path that maintains them live), so a
    // reopened archive answers queries without any per-query rebuild.

    fn as_of(&self, steps: &[KeyQuery], v: u32) -> Result<Option<Document>, StoreError> {
        self.inner.as_of(steps, v)
    }

    fn history_values(&self, steps: &[KeyQuery]) -> Result<Option<ElementHistory>, StoreError> {
        self.inner.history_values(steps)
    }

    fn range(
        &self,
        prefix: &[KeyQuery],
        versions: RangeInclusive<u32>,
    ) -> Result<Vec<RangeEntry>, StoreError> {
        self.inner.range(prefix, versions)
    }

    fn diff(&self, steps: &[KeyQuery], v1: u32, v2: u32) -> Result<VersionDelta, StoreError> {
        self.inner.diff(steps, v1, v2)
    }
}

impl VersionStore for DurableArchive {
    fn add_version(&mut self, doc: &Document) -> Result<u32, StoreError> {
        self.check_writable()?;
        // encode and size-check up front: everything that can be rejected
        // without touching state is rejected *before* the merge, so an
        // error here never leaves memory ahead of disk
        let raw = doc_to_bytes(doc);
        if raw.len() as u64 > MAX_PAYLOAD {
            return Err(StoreError::Backend(format!(
                "version payload of {} bytes exceeds the {MAX_PAYLOAD} byte block limit",
                raw.len()
            )));
        }
        // merge next: a rejected document leaves the store unchanged and
        // nothing invalid reaches the journal
        let v = self.inner.add_version(doc)?;
        let (codec, payload) = self.options.compression.encode(&raw);
        self.journal(BlockKind::Version, codec, v, raw.len() as u64, &payload)?;
        Ok(v)
    }

    fn add_empty_version(&mut self) -> Result<u32, StoreError> {
        self.check_writable()?;
        let v = self.inner.add_empty_version()?;
        self.journal(BlockKind::Empty, BlockCodec::Raw, v, 0, &[])?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch_path;
    use xarch_core::Archive;
    use xarch_xml::parse;

    fn spec() -> KeySpec {
        KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))\n(/db/rec, (val, {}))").unwrap()
    }

    fn fresh_inner() -> Box<dyn VersionStore> {
        Box::new(Archive::new(spec()))
    }

    #[test]
    fn durable_archive_is_shareable_across_threads() {
        // reads bypass the journal entirely (segment state only matters
        // at commit/open), so a durable store can serve reader threads
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DurableArchive>();
    }

    #[test]
    fn versions_survive_reopen() {
        let path = scratch_path("durable-reopen");
        let v1 = parse("<db><rec><id>1</id><val>a</val></rec></db>").unwrap();
        let v2 = parse("<db><rec><id>1</id><val>b</val></rec></db>").unwrap();
        {
            let mut d = DurableArchive::open(&path, fresh_inner()).unwrap();
            assert_eq!(d.add_version(&v1).unwrap(), 1);
            assert_eq!(d.add_version(&v2).unwrap(), 2);
        } // dropped without any shutdown protocol — every commit is already on disk
        let d = DurableArchive::open(&path, fresh_inner()).unwrap();
        assert_eq!(d.latest(), 2);
        assert_eq!(d.recovery().versions_recovered, 2);
        let got = d.retrieve(1).unwrap().unwrap();
        assert!(xarch_core::equiv_modulo_key_order(&got, &v1, d.spec()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_versions_survive_reopen() {
        let path = scratch_path("durable-empty");
        let v1 = parse("<db><rec><id>1</id><val>a</val></rec></db>").unwrap();
        {
            let mut d = DurableArchive::open(&path, fresh_inner()).unwrap();
            d.add_version(&v1).unwrap();
            assert_eq!(d.add_empty_version().unwrap(), 2);
        }
        let d = DurableArchive::open(&path, fresh_inner()).unwrap();
        assert_eq!(d.latest(), 2);
        assert!(d.has_version(2));
        assert!(d.retrieve(2).unwrap().is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_create_is_recreated_not_bricked() {
        // a crash mid-way through the very first superblock write leaves a
        // prefix of the superblock on disk; nothing was ever committed, so
        // open must recreate rather than fail forever
        let path = scratch_path("durable-torn-create");
        let full = crate::superblock::encode(&spec());
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let mut d = DurableArchive::open(&path, fresh_inner()).unwrap();
        assert_eq!(d.latest(), 0);
        assert!(d.recovery().recovered_torn_tail());
        let v1 = parse("<db><rec><id>1</id><val>a</val></rec></db>").unwrap();
        d.add_version(&v1).unwrap();
        drop(d);
        let d = DurableArchive::open(&path, fresh_inner()).unwrap();
        assert_eq!(d.latest(), 1);
        std::fs::remove_file(&path).unwrap();

        // a short file that is NOT a superblock prefix is corruption, not
        // a torn create — it must fail loudly
        let path = scratch_path("durable-short-garbage");
        std::fs::write(&path, b"not a segment").unwrap();
        let err = DurableArchive::open(&path, fresh_inner())
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn second_concurrent_open_is_refused() {
        // two live handles on one journal would overwrite each other's
        // acknowledged commits; the OS lock makes the segment single-writer
        let path = scratch_path("durable-lock");
        let d1 = DurableArchive::open(&path, fresh_inner()).unwrap();
        let err = DurableArchive::open(&path, fresh_inner())
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("already open"), "{err}");
        drop(d1); // the lock dies with the handle…
        let d2 = DurableArchive::open(&path, fresh_inner()).unwrap();
        assert_eq!(d2.latest(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_populated_inner() {
        let path = scratch_path("durable-populated");
        let mut inner = Archive::new(spec());
        inner
            .add_version(&parse("<db><rec><id>1</id></rec></db>").unwrap())
            .unwrap();
        let err = DurableArchive::open(&path, Box::new(inner)).unwrap_err();
        assert!(err.to_string().contains("fresh inner store"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn lzss_blocks_round_trip() {
        let path = scratch_path("durable-lzss");
        let opts = DurableOptions {
            compression: BlockCodec::Lzss,
            sync: true,
        };
        let mut src = String::from("<db>");
        for i in 0..40 {
            src.push_str(&format!(
                "<rec><id>{i}</id><val>common text body</val></rec>"
            ));
        }
        src.push_str("</db>");
        let doc = parse(&src).unwrap();
        let raw_len = crate::payload::doc_to_bytes(&doc).len() as u64;
        {
            let mut d = DurableArchive::open_with(&path, opts, fresh_inner()).unwrap();
            d.add_version(&doc).unwrap();
            // the repetitive payload must actually have been compressed
            assert!(d.journal_bytes() < raw_len);
        }
        let d = DurableArchive::open_with(&path, opts, fresh_inner()).unwrap();
        let got = d.retrieve(1).unwrap().unwrap();
        assert!(xarch_core::equiv_modulo_key_order(&got, &doc, d.spec()));
        std::fs::remove_file(&path).unwrap();
    }
}
