//! # xarch-storage
//!
//! Durable on-disk archive storage: an append-only, segmented,
//! self-describing file format plus [`DurableArchive`], the persistent
//! [`VersionStore`](xarch_core::VersionStore) backend built on it.
//!
//! The paper's archiver "reads the archive from disk, merges the incoming
//! version, and writes it back"; the other backends in this workspace keep
//! the archive in process memory and lose it on exit. This crate closes
//! that gap the way production cold-storage archives do (Gray et al.,
//! *Online Scientific Data Curation, Publication, and Archiving*): a
//! durable, integrity-checked, self-describing format in which every
//! acknowledged commit survives a crash.
//!
//! ## On-disk layout
//!
//! A segment file is a superblock followed by one block per committed
//! version (or version batch), with checkpoint blocks interleaved at the
//! configured cadence:
//!
//! ```text
//! ┌────────────────────────── superblock ──────────────────────────┐
//! │ magic "XARCHSG1" │ format u32 │ spec_len u32 │ key spec │ crc32 │
//! └────────────────────────────────────────────────────────────────┘
//! ┌──────────────────────── block (version 1) ─────────────────────┐
//! │ kind u8 │ codec u8 │ version u32 │ raw_len u64 │ stored_len u64│  header
//! │ payload: version document as an extmem event stream            │  (codec-encoded)
//! │ crc32 over header+payload │ commit word "CMT!"                 │  trailer
//! └────────────────────────────────────────────────────────────────┘
//! ┌──────────────────────── block (version 2) ─────────────────────┐ …
//! ┌────────────────── checkpoint block (covers 1..=n) ─────────────┐
//! │ same header/trailer grammar; payload = snapshot of the wrapped │
//! │ backend's materialized state, back-chained to the previous one │
//! └────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Every field, block kind, and recovery rule is specified byte-for-byte
//! in `docs/FORMAT.md` at the repository root; a golden test
//! (`tests/docs.rs`) pins the spec's constants to this crate's source.
//! The current format revision is
//! [`superblock::FORMAT_VERSION`] (rev 2 introduced checkpoint blocks;
//! rev-1 files open unchanged).
//!
//! Three properties fall out of this framing:
//!
//! * **self-describing** — the superblock pins the format generation and
//!   the governing key spec, so opening with a mismatched spec fails
//!   up front instead of merging wrongly;
//! * **integrity-checked** — every block carries a CRC-32 over header and
//!   payload; bit rot surfaces as
//!   [`StoreError::Corrupt`](xarch_core::StoreError::Corrupt) with the
//!   failing byte offset;
//! * **crash-safe** — the commit word is the last thing written, so a
//!   torn final append is recognized on reopen and truncated away,
//!   recovering every fully committed version ([`RecoveryStats`] reports
//!   what happened).
//!
//! The payload reuses `xarch_extmem`'s event-stream encoding, optionally
//! LZSS-compressed per block via `xarch_compress` (incompressible blocks
//! fall back to raw — the codec byte records what was stored).
//!
//! ## Replay, not state dump
//!
//! Blocks journal the *input* documents, not the merged archive. Reopen
//! replays them through the same deterministic Nested Merge, rebuilding
//! exactly the pre-crash state for any inner backend — the differential
//! tests assert the reopened store is version-for-version byte-identical
//! to one that never left memory.
//!
//! Checkpoint blocks cap what that costs: with
//! [`DurableOptions::checkpoint_every`] set (or the builder's
//! `.checkpoint_every(n)`), reopen restores the newest intact snapshot
//! and replays only the tail journal behind it, so startup stays flat as
//! history grows. Checkpoints are *pure redundancy* — a damaged one is
//! skipped loudly and recovery falls back to an older one or to a full
//! replay, never to an error the journal itself doesn't have.
//!
//! ## The cold-read path
//!
//! [`ColdArchive`] answers queries straight off the mmap'd segment file:
//! open walks only the block headers to build a per-block version index,
//! and each query decodes just the blocks its answer needs — the archive
//! is never materialized in RAM. See [`cold`] for the integrity policy
//! and [`mmap`] for the mapping itself.
//!
//! ## Enforced invariants
//!
//! The decode/recovery modules in this crate are under the workspace's
//! `panic-freedom` and `cast-safety` invariants (enforced in CI by
//! `cargo run -p xarch_analysis -- check` and backed by the clippy denies
//! below): corrupt bytes must surface as positioned
//! [`StoreError::Corrupt`](xarch_core::StoreError::Corrupt) values — never
//! a panic, never a silently truncating `as` cast.
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::unreachable
    )
)]

pub mod block;
pub(crate) mod bytes;
pub mod checkpoint;
pub mod cold;
pub mod crc;
pub mod durable;
pub mod metrics;
pub mod mmap;
pub mod payload;
pub mod segment;
pub mod superblock;

pub use block::{BlockHeader, BlockKind, ScannedBlock};
pub use checkpoint::{decode_checkpoint, encode_checkpoint, CheckpointPayload};
pub use cold::ColdArchive;
pub use crc::{crc32, Crc32};
pub use durable::{DurableArchive, DurableOptions};
pub use metrics::{ColdMetrics, StorageMetrics};
pub use mmap::MappedFile;
pub use segment::{scan_checkpoints, CheckpointRef, RecoveryStats, ResumeFrom, Segment};

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch path under the system temp directory — for examples,
/// benches, and tests that need a throwaway segment file. Unique per
/// process and call; stale files from earlier runs are truncated by
/// [`Segment::create`].
pub fn scratch_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("xarch-{tag}-{}-{n}.seg", std::process::id()))
}
