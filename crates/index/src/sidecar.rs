//! [`QueryIndex`]: a backend-independent query sidecar, and
//! [`IndexedStore`], the wrapper that maintains it.
//!
//! The §7 structures in [`crate::keyindex`] and [`crate::tstree`] index
//! the in-memory archive's arena directly. Backends without a stable
//! node arena — the external-memory event stream is rewritten by every
//! merge, the chunked archive scatters records over partitions — need an
//! index keyed by something stable: the *key paths themselves*.
//!
//! [`QueryIndex`] is a trie over keyed element paths. Each trie node
//! holds the element's existence [`TimeSet`] and its keyed children in a
//! sorted map, fed incrementally from each incoming version document (the
//! same annotation pass the merge already performs). `history` descends
//! the trie in `O(l log d)` comparisons with zero backend I/O; `range`
//! reads one sorted level. `as_of` consults the trie to reject missing
//! elements for free and delegates content extraction to the wrapped
//! backend's partial scan.
//!
//! Because the sidecar is rebuilt through the same `add_version` path it
//! is maintained by, a durable store that replays its journal on open
//! re-establishes the sidecar as part of replay — queries after reopen
//! never pay a per-query rebuild.

use std::collections::BTreeMap;
use std::io::Write;
use std::ops::RangeInclusive;

use xarch_core::state::{corrupt, get_timeset, put_timeset, STATE_INDEXED_STORE};
use xarch_core::wire::{get_bytes, get_str, get_varint, put_bytes, put_str, put_varint};
use xarch_core::{
    KeyQuery, RangeEntry, StoreError, StoreReader, StoreStats, TimeSet, VersionStore,
};
use xarch_keys::{annotate, KeySpec};
use xarch_xml::{Document, NodeKind};

/// One trie node: when the element exists, and its keyed children in
/// label order.
#[derive(Debug, Clone, Default)]
struct QNode {
    time: TimeSet,
    children: BTreeMap<KeyQuery, QNode>,
}

/// A trie over keyed element paths with existence timestamps — the query
/// sidecar any [`VersionStore`] can maintain.
#[derive(Debug, Clone, Default)]
pub struct QueryIndex {
    root: QNode,
}

impl QueryIndex {
    /// An empty sidecar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs version `v` of the database from its source document —
    /// every keyed element present gets `v` added to its existence set.
    pub fn apply_version(
        &mut self,
        doc: &Document,
        spec: &KeySpec,
        v: u32,
    ) -> Result<(), StoreError> {
        let ann = annotate(doc, spec)
            .map_err(|e| StoreError::Backend(format!("sidecar annotation failed: {e}")))?;
        self.root.time.insert(v);
        let root = doc.root();
        if let (NodeKind::Element(_), Some(_)) = (&doc.node(root).kind, ann.key(root)) {
            insert_rec(&mut self.root, doc, &ann, root, v);
        }
        Ok(())
    }

    /// Absorbs an *empty* version: only the synthetic root ticks.
    pub fn apply_empty_version(&mut self, v: u32) {
        self.root.time.insert(v);
    }

    /// The existence set of the element addressed by `steps` (`None` if
    /// never archived). The empty path addresses the synthetic root.
    pub fn history(&self, steps: &[KeyQuery]) -> Option<TimeSet> {
        let mut cur = &self.root;
        for step in steps {
            cur = cur.children.get(step)?;
        }
        Some(cur.time.clone())
    }

    /// The keyed children of the node addressed by `prefix`, lifetimes
    /// clamped to `lo..=hi`; results come out of the sorted map already
    /// in label order.
    pub fn range(&self, prefix: &[KeyQuery], lo: u32, hi: u32) -> Vec<RangeEntry> {
        let mut cur = &self.root;
        for step in prefix {
            match cur.children.get(step) {
                Some(n) => cur = n,
                None => return Vec::new(),
            }
        }
        cur.children
            .iter()
            .filter_map(|(step, n)| {
                let time = n.time.clamp_range(lo, hi);
                (!time.is_empty()).then(|| RangeEntry {
                    step: step.clone(),
                    time,
                })
            })
            .collect()
    }

    /// Number of trie nodes (diagnostics; the sidecar holds keyed
    /// structure only, no content).
    pub fn len(&self) -> usize {
        fn count(n: &QNode) -> usize {
            1 + n.children.values().map(count).sum::<usize>()
        }
        count(&self.root)
    }

    /// True when nothing has been absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.root.time.is_empty() && self.root.children.is_empty()
    }
}

fn corrupt_at(pos: usize, reason: &str) -> StoreError {
    StoreError::Corrupt {
        offset: pos as u64,
        reason: reason.into(),
    }
}

/// Appends one trie node: timestamp, child count, then per child the
/// [`KeyQuery`] step (tag, part count, `(path, canon)` pairs) followed by
/// the child node. Encode recurses — the trie is as deep as the keyed
/// paths the spec admits.
fn put_qnode(out: &mut Vec<u8>, n: &QNode) {
    put_timeset(out, &n.time);
    put_varint(out, n.children.len() as u64);
    for (step, child) in &n.children {
        put_str(out, &step.tag);
        put_varint(out, step.parts.len() as u64);
        for (path, canon) in &step.parts {
            put_str(out, path);
            put_str(out, canon);
        }
        put_qnode(out, child);
    }
}

/// Decodes a trie written by [`put_qnode`]. Iterative (explicit frame
/// stack) so a corrupted payload claiming absurd nesting cannot overflow
/// the call stack.
fn get_qnode(buf: &[u8], pos: &mut usize) -> Result<QNode, StoreError> {
    struct Frame {
        node: QNode,
        remaining: u64,
        step: KeyQuery,
    }
    let time = get_timeset(buf, pos)?;
    let remaining = get_varint(buf, pos).map_err(corrupt)?;
    let mut stack = vec![Frame {
        node: QNode {
            time,
            children: BTreeMap::new(),
        },
        remaining,
        step: KeyQuery::new(""),
    }];
    loop {
        let Some(top) = stack.last_mut() else {
            return Err(corrupt_at(
                *pos,
                "checkpoint state: sidecar stack underflow",
            ));
        };
        if top.remaining == 0 {
            let Some(done) = stack.pop() else {
                return Err(corrupt_at(
                    *pos,
                    "checkpoint state: sidecar stack underflow",
                ));
            };
            match stack.last_mut() {
                Some(parent) => {
                    if parent.node.children.insert(done.step, done.node).is_some() {
                        return Err(corrupt_at(
                            *pos,
                            "checkpoint state: duplicate sidecar child",
                        ));
                    }
                }
                None => return Ok(done.node),
            }
            continue;
        }
        top.remaining -= 1;
        let at = *pos;
        let tag = get_str(buf, pos).map_err(corrupt)?.to_owned();
        let nparts = get_varint(buf, pos).map_err(corrupt)? as usize;
        // a part costs ≥ 2 encoded bytes; an implausible count is corruption
        if nparts > buf.len() / 2 + 1 {
            return Err(corrupt_at(at, "checkpoint state: implausible part count"));
        }
        let mut parts = Vec::with_capacity(nparts);
        for _ in 0..nparts {
            let path = get_str(buf, pos).map_err(corrupt)?.to_owned();
            let canon = get_str(buf, pos).map_err(corrupt)?.to_owned();
            parts.push((path, canon));
        }
        let step = KeyQuery { tag, parts };
        let time = get_timeset(buf, pos)?;
        let remaining = get_varint(buf, pos).map_err(corrupt)?;
        stack.push(Frame {
            node: QNode {
                time,
                children: BTreeMap::new(),
            },
            remaining,
            step,
        });
    }
}

fn insert_rec(
    parent: &mut QNode,
    doc: &Document,
    ann: &xarch_keys::Annotations,
    id: xarch_xml::NodeId,
    v: u32,
) {
    let Some(k) = ann.key(id) else { return };
    let step = KeyQuery {
        tag: doc.tag_name(id).to_owned(),
        parts: k
            .parts
            .iter()
            .map(|p| (p.path.clone(), p.canon.clone()))
            .collect(),
    };
    let node = parent.children.entry(step).or_default();
    node.time.insert(v);
    for &c in doc.children(id) {
        if let (NodeKind::Element(_), Some(_)) = (&doc.node(c).kind, ann.key(c)) {
            insert_rec(node, doc, ann, c, v);
        }
    }
}

/// Any [`VersionStore`] wrapped with a maintained [`QueryIndex`]:
/// `history` and `range` are answered from the sidecar with no backend
/// I/O; `as_of` uses the sidecar to reject missing elements and the
/// backend's own partial retrieval for content.
pub struct IndexedStore {
    inner: Box<dyn VersionStore>,
    sidecar: QueryIndex,
}

impl std::fmt::Debug for IndexedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexedStore")
            .field("latest", &self.inner.latest())
            .field("sidecar_nodes", &self.sidecar.len())
            .finish()
    }
}

impl IndexedStore {
    /// Wraps `inner`, backfilling the sidecar from its existing versions
    /// (a fresh store costs nothing; a populated one is replayed once).
    pub fn new(inner: Box<dyn VersionStore>) -> Result<Self, StoreError> {
        let mut sidecar = QueryIndex::new();
        let spec = inner.spec().clone();
        for v in 1..=inner.latest() {
            match inner.retrieve(v)? {
                Some(doc) => sidecar.apply_version(&doc, &spec, v)?,
                None => sidecar.apply_empty_version(v),
            }
        }
        Ok(Self { inner, sidecar })
    }

    /// The maintained sidecar (for inspection and measurements).
    pub fn query_index(&self) -> &QueryIndex {
        &self.sidecar
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &dyn VersionStore {
        self.inner.as_ref()
    }
}

impl StoreReader for IndexedStore {
    fn spec(&self) -> &KeySpec {
        self.inner.spec()
    }

    fn latest(&self) -> u32 {
        self.inner.latest()
    }

    fn has_version(&self, v: u32) -> bool {
        self.inner.has_version(v)
    }

    fn retrieve(&self, v: u32) -> Result<Option<Document>, StoreError> {
        self.inner.retrieve(v)
    }

    fn retrieve_into(&self, v: u32, out: &mut dyn Write) -> Result<bool, StoreError> {
        self.inner.retrieve_into(v, out)
    }

    fn history(&self, steps: &[KeyQuery]) -> Result<Option<TimeSet>, StoreError> {
        Ok(self.sidecar.history(steps))
    }

    fn stats(&self) -> Result<StoreStats, StoreError> {
        self.inner.stats()
    }

    fn stats_at(&self, v: u32) -> Result<StoreStats, StoreError> {
        self.inner.stats_at(v)
    }

    fn as_of(&self, steps: &[KeyQuery], v: u32) -> Result<Option<Document>, StoreError> {
        // sidecar gate: a missing element or dead version costs no I/O
        match self.sidecar.history(steps) {
            None => return Ok(None),
            Some(t) if !t.contains(v) => return Ok(None),
            Some(_) => {}
        }
        self.inner.as_of(steps, v)
    }

    fn range(
        &self,
        prefix: &[KeyQuery],
        versions: RangeInclusive<u32>,
    ) -> Result<Vec<RangeEntry>, StoreError> {
        let lo = (*versions.start()).max(1);
        let hi = (*versions.end()).min(self.inner.latest());
        Ok(self.sidecar.range(prefix, lo, hi))
    }
}

impl VersionStore for IndexedStore {
    fn add_version(&mut self, doc: &Document) -> Result<u32, StoreError> {
        let v = self.inner.add_version(doc)?;
        let spec = self.inner.spec().clone();
        self.sidecar.apply_version(doc, &spec, v)?;
        Ok(v)
    }

    fn add_empty_version(&mut self) -> Result<u32, StoreError> {
        let v = self.inner.add_empty_version()?;
        self.sidecar.apply_empty_version(v);
        Ok(v)
    }

    fn add_versions(&mut self, docs: &[Document]) -> Result<Vec<u32>, StoreError> {
        // the backend takes its batch fast path; the sidecar absorbs the
        // same documents version by version (its trie insertion is
        // already O(|version|), so there is nothing cross-version to fold)
        let assigned = self.inner.add_versions(docs)?;
        let spec = self.inner.spec().clone();
        for (doc, &v) in docs.iter().zip(&assigned) {
            self.sidecar.apply_version(doc, &spec, v)?;
        }
        Ok(assigned)
    }

    fn checkpoint_state(&self) -> Result<Option<Vec<u8>>, StoreError> {
        // wrap the inner backend's state (if it supports checkpointing at
        // all) and append the serialized sidecar so a restore skips the
        // backfill replay too
        let Some(inner) = self.inner.checkpoint_state()? else {
            return Ok(None);
        };
        let mut out = vec![STATE_INDEXED_STORE];
        put_bytes(&mut out, &inner);
        put_qnode(&mut out, &self.sidecar.root);
        Ok(Some(out))
    }

    fn restore_checkpoint(&mut self, state: &[u8]) -> Result<bool, StoreError> {
        if self.inner.latest() != 0 {
            return Err(StoreError::Backend(
                "restore_checkpoint requires an empty store".into(),
            ));
        }
        if state.first() != Some(&STATE_INDEXED_STORE) {
            return Ok(false);
        }
        let mut pos = 1usize;
        let inner_state = get_bytes(state, &mut pos).map_err(corrupt)?;
        // decode the sidecar fully BEFORE touching the inner store so a
        // damaged payload can never leave the pair half-restored
        let root = get_qnode(state, &mut pos)?;
        if pos != state.len() {
            return Err(corrupt_at(pos, "checkpoint state: trailing bytes"));
        }
        if !self.inner.restore_checkpoint(inner_state)? {
            return Ok(false);
        }
        self.sidecar = QueryIndex { root };
        Ok(true)
    }

    fn fork(&self) -> Result<Box<dyn VersionStore>, StoreError> {
        // fork the backend, clone the derived sidecar — the pair stays
        // consistent because both describe the same version sequence
        Ok(Box::new(IndexedStore {
            inner: self.inner.fork()?,
            sidecar: self.sidecar.clone(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xarch_core::{Archive, ChunkedArchive};
    use xarch_xml::parse;

    fn spec() -> KeySpec {
        KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))\n(/db/rec, (val, {}))").unwrap()
    }

    fn stores() -> Vec<(&'static str, IndexedStore)> {
        vec![
            (
                "in-memory",
                IndexedStore::new(Box::new(Archive::new(spec()))).unwrap(),
            ),
            (
                "chunked",
                IndexedStore::new(Box::new(ChunkedArchive::new(spec(), 3))).unwrap(),
            ),
        ]
    }

    #[test]
    fn sidecar_answers_match_backend() {
        for (label, mut s) in stores() {
            s.add_version(&parse("<db><rec><id>1</id><val>a</val></rec></db>").unwrap())
                .unwrap();
            s.add_version(
                &parse(
                    "<db><rec><id>1</id><val>b</val></rec>\
                     <rec><id>2</id><val>c</val></rec></db>",
                )
                .unwrap(),
            )
            .unwrap();
            s.add_empty_version().unwrap();
            let q = |id: &str| {
                vec![
                    KeyQuery::new("db"),
                    KeyQuery::new("rec").with_text("id", id),
                ]
            };
            assert_eq!(
                s.history(&q("1")).unwrap().unwrap().to_string(),
                "1-2",
                "{label}"
            );
            assert_eq!(s.history(&q("9")).unwrap(), None, "{label}");
            // empty path = synthetic root: ticks through the empty version
            assert_eq!(
                s.history(&[]).unwrap().unwrap().to_string(),
                "1-3",
                "{label}"
            );
            // as_of gated by the sidecar, content from the backend
            let sub = s.as_of(&q("2"), 2).unwrap().expect("rec 2 at v2");
            assert!(xarch_xml::writer::to_compact_string(&sub).contains("<val>c</val>"));
            assert!(s.as_of(&q("2"), 1).unwrap().is_none(), "{label}");
            // range off the sorted trie level
            let hits = s.range(&[KeyQuery::new("db")], 1..=3).unwrap();
            assert_eq!(hits.len(), 2, "{label}: {hits:?}");
            assert_eq!(hits[0].time.to_string(), "1-2");
            assert_eq!(hits[1].time.to_string(), "2");
        }
    }

    #[test]
    fn checkpoint_round_trips_inner_state_and_sidecar() {
        let mut s = IndexedStore::new(Box::new(Archive::new(spec()))).unwrap();
        s.add_version(&parse("<db><rec><id>1</id><val>a</val></rec></db>").unwrap())
            .unwrap();
        s.add_empty_version().unwrap();
        s.add_version(
            &parse(
                "<db><rec><id>1</id><val>b</val></rec>\
                 <rec><id>2</id><val>c</val></rec></db>",
            )
            .unwrap(),
        )
        .unwrap();
        let state = s
            .checkpoint_state()
            .unwrap()
            .expect("indexed store checkpoints");

        let mut fresh = IndexedStore::new(Box::new(Archive::new(spec()))).unwrap();
        assert!(fresh.restore_checkpoint(&state).unwrap());
        assert_eq!(fresh.latest(), 3);
        let q = vec![
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", "1"),
        ];
        assert_eq!(fresh.history(&q).unwrap().unwrap().to_string(), "1,3");
        assert_eq!(fresh.history(&[]).unwrap().unwrap().to_string(), "1-3");
        assert_eq!(fresh.query_index().len(), s.query_index().len());
        let sub = fresh.as_of(&q, 3).unwrap().expect("rec 1 at v3");
        assert!(xarch_xml::writer::to_compact_string(&sub).contains("<val>b</val>"));
        // restored state re-checkpoints byte-identically
        assert_eq!(fresh.checkpoint_state().unwrap().unwrap(), state);
    }

    #[test]
    fn restore_rejects_foreign_tags_and_survives_bit_flips() {
        let mut s = IndexedStore::new(Box::new(Archive::new(spec()))).unwrap();
        s.add_version(&parse("<db><rec><id>1</id><val>a</val></rec></db>").unwrap())
            .unwrap();
        let state = s.checkpoint_state().unwrap().unwrap();

        // a bare-archive state is some other backend's: fall back to replay
        let bare = xarch_core::state::encode_archive(&Archive::new(spec()));
        let mut fresh = IndexedStore::new(Box::new(Archive::new(spec()))).unwrap();
        assert!(!fresh.restore_checkpoint(&bare).unwrap());

        // flipping any single byte must never panic: every outcome is a
        // loud error, a clean mismatch, or an intact restore
        for i in 0..state.len() {
            let mut bad = state.clone();
            bad[i] ^= 0x40;
            let mut fresh = IndexedStore::new(Box::new(Archive::new(spec()))).unwrap();
            let _ = fresh.restore_checkpoint(&bad);
        }
    }

    #[test]
    fn backfill_replays_existing_versions() {
        let mut inner = Archive::new(spec());
        inner
            .add_version(&parse("<db><rec><id>1</id><val>a</val></rec></db>").unwrap())
            .unwrap();
        inner.add_empty_version();
        let s = IndexedStore::new(Box::new(inner)).unwrap();
        assert_eq!(s.history(&[]).unwrap().unwrap().to_string(), "1-2");
        let q = vec![
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", "1"),
        ];
        assert_eq!(s.history(&q).unwrap().unwrap().to_string(), "1");
    }
}
