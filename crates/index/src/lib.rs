//! # xarch-index
//!
//! The auxiliary index structures of §7 of *Archiving Scientific Data*:
//!
//! * [`tstree`] — **timestamp trees** (Fig 15): per-node binary trees over
//!   the children's timestamps, letting version retrieval probe
//!   `O(α log(k/α))` tree nodes instead of scanning all `k` children
//!   (with the paper's 2k probe cut-off fallback);
//! * [`keyindex`] — sorted lists of child key values, answering the
//!   temporal history of an element addressed by an `l`-step key path in
//!   `O(l log d)` comparisons (binary search per level).
//!
//! Both structures are built with a single scan of the archive and carry
//! probe/comparison counters so the complexity claims are measurable (the
//! `bench_retrieval` benchmarks and the `index` figure reproduce them).

pub mod keyindex;
pub mod tstree;

pub use keyindex::HistoryIndex;
pub use tstree::TimestampIndex;
