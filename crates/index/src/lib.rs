//! # xarch-index
//!
//! The auxiliary index structures of §7 of *Archiving Scientific Data*,
//! and the indexed `VersionStore` backends built from them:
//!
//! * [`tstree`] — **timestamp trees** (Fig 15): per-node binary trees over
//!   the children's timestamps, letting version retrieval probe
//!   `O(α log(k/α))` tree nodes instead of scanning all `k` children
//!   (with the paper's 2k probe cut-off fallback);
//! * [`keyindex`] — sorted lists of child key values, answering the
//!   temporal history of an element addressed by an `l`-step key path in
//!   `O(l log d)` comparisons (binary search per level);
//! * [`indexed`] — [`IndexedArchive`], the in-memory archiver with both
//!   structures maintained *incrementally* after every merge, answering
//!   `as_of` / `history` / `range` in time proportional to the answer;
//! * [`sidecar`] — [`QueryIndex`], a key-path trie with existence
//!   timestamps that any backend can maintain (the event-stream and
//!   chunked backends have no stable node arena to index), and
//!   [`IndexedStore`], the wrapper that feeds it.
//!
//! All index structures are `Send + Sync` — probe counters are atomics —
//! so one built index can serve concurrent readers. Both maintenance
//! paths (`apply_version` walks only the nodes the new version touches)
//! keep the cost per merge at O(|version|), not O(|archive|), replacing
//! the paper's rebuild-per-version suggestion.

pub mod indexed;
pub mod keyindex;
pub mod sidecar;
pub mod tstree;

pub use indexed::IndexedArchive;
pub use keyindex::HistoryIndex;
pub use sidecar::{IndexedStore, QueryIndex};
pub use tstree::TimestampIndex;

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn indexes_are_shareable_across_threads() {
        // the §7 structures are read-only after a build/apply; atomics
        // (not Cell) back their probe counters, so sharing one index among
        // reader threads is safe by construction
        assert_send_sync::<HistoryIndex>();
        assert_send_sync::<TimestampIndex>();
        assert_send_sync::<QueryIndex>();
        assert_send_sync::<IndexedArchive>();
        assert_send_sync::<IndexedStore>();
    }
}
