//! Timestamp trees (§7.1, Fig 15).
//!
//! For each archive node with `k` children, a complete-ish binary tree is
//! built bottom-up by pairing children repeatedly; each internal node holds
//! the union of its children's timestamps. To find the children relevant to
//! version `v`, search down from the tree root, pruning subtrees whose
//! union does not contain `v`. Following the paper, the search also counts
//! probes and falls back to scanning all `k` leaves once `k` tree nodes
//! have been probed, bounding the worst case at `2k` probes.

use std::collections::HashMap;

use xarch_core::{ANodeId, Archive, TimeSet};
use xarch_obs::Counter;

/// One node of a timestamp binary tree.
#[derive(Debug, Clone)]
enum TsNode {
    Leaf {
        time: TimeSet,
        /// "offset to the corresponding child node in the archive"
        child: ANodeId,
    },
    Inner {
        time: TimeSet,
        left: usize,
        right: usize,
    },
}

/// The timestamp tree of one archive node's children.
#[derive(Debug, Clone, Default)]
pub struct TsTree {
    nodes: Vec<TsNode>,
    root: Option<usize>,
    k: usize,
}

impl TsTree {
    /// Builds the tree for `parent`'s children ("pairing nodes repeatedly
    /// in a bottom-up manner and taking the union of timestamps").
    fn build(archive: &Archive, parent: ANodeId, inherited: &TimeSet) -> Self {
        let mut nodes = Vec::new();
        let mut level: Vec<usize> = Vec::new();
        for &c in archive.children(parent) {
            let time = archive
                .node(c)
                .time
                .clone()
                .unwrap_or_else(|| inherited.clone());
            nodes.push(TsNode::Leaf { time, child: c });
            level.push(nodes.len() - 1);
        }
        let k = level.len();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                if let [l, r] = pair {
                    let time = nodes[*l].time().union(nodes[*r].time());
                    nodes.push(TsNode::Inner {
                        time,
                        left: *l,
                        right: *r,
                    });
                    next.push(nodes.len() - 1);
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        TsTree {
            root: level.first().copied(),
            nodes,
            k,
        }
    }

    /// Children relevant to version `v`, plus the number of tree nodes
    /// probed. Falls back to scanning all leaves after `k` probes.
    pub fn relevant(&self, v: u32) -> (Vec<ANodeId>, usize) {
        let Some(root) = self.root else {
            return (Vec::new(), 0);
        };
        let mut out = Vec::new();
        let mut probes = 0usize;
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            probes += 1;
            if probes > self.k {
                // cut-off: scan all leaves instead (≤ 2k total probes).
                // Leaves occupy the front of `nodes` in child-list order,
                // so iteration order *is* document order (child lists are
                // not id-sorted once the weave reorders them).
                out.clear();
                for node in &self.nodes {
                    if let TsNode::Leaf { time, child } = node {
                        probes += 1;
                        if time.contains(v) {
                            out.push(*child);
                        }
                    }
                }
                return (out, probes);
            }
            match &self.nodes[n] {
                TsNode::Leaf { time, child } => {
                    if time.contains(v) {
                        out.push(*child);
                    }
                }
                TsNode::Inner { time, left, right } => {
                    if time.contains(v) {
                        // push right first so left is visited first
                        stack.push(*right);
                        stack.push(*left);
                    }
                }
            }
        }
        (out, probes)
    }

    /// Number of children (`k`).
    pub fn fanout(&self) -> usize {
        self.k
    }
}

impl TsNode {
    fn time(&self) -> &TimeSet {
        match self {
            TsNode::Leaf { time, .. } | TsNode::Inner { time, .. } => time,
        }
    }
}

/// Timestamp trees for every internal archive node, built with one scan
/// or maintained incrementally, one merged version at a time.
///
/// The probe counter is an [`xarch_obs::Counter`] (atomic under the hood)
/// so a built index can be shared across reader threads (`TimestampIndex`
/// is `Send + Sync`; lookups take `&self`) — and so the same handle can
/// be registered with an observability registry, making the §7 probe
/// accounting read from one source of truth.
#[derive(Debug)]
pub struct TimestampIndex {
    trees: HashMap<ANodeId, TsTree>,
    /// Total probes across all `relevant_children` calls (a monotone
    /// count; measurement windows difference it, or use
    /// [`TimestampIndex::reset_probes`] on a detached index).
    probes: Counter,
}

impl Clone for TimestampIndex {
    fn clone(&self) -> Self {
        Self {
            trees: self.trees.clone(),
            // detached: the clone keeps the count but not the registration
            probes: Counter::with_value(self.probes.get()),
        }
    }
}

impl Default for TimestampIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl TimestampIndex {
    /// An empty index (for an empty archive); grow it with
    /// [`TimestampIndex::apply_version`].
    pub fn new() -> Self {
        Self {
            trees: HashMap::new(),
            probes: Counter::new(),
        }
    }

    /// Builds the index ("the timestamp trees are created each time a new
    /// version arrives and after nested merge is applied").
    pub fn build(archive: &Archive) -> Self {
        let mut trees = HashMap::new();
        let root_time = archive.effective_time(archive.root());
        build_rec(archive, archive.root(), &root_time, &mut trees);
        Self {
            trees,
            probes: Counter::new(),
        }
    }

    /// Replace the probe counter with `counter` (typically one registered
    /// under `index.timestamp.probes`), carrying the count so far into it.
    pub fn bind_counter(&mut self, counter: Counter) {
        counter.add(self.probes.get());
        self.probes = counter;
    }

    /// The live probe-counter handle (shared, cheap to clone) — lets a
    /// checkpoint restore rebuild the index and keep recording into an
    /// already registry-bound counter.
    pub(crate) fn counter_handle(&self) -> Counter {
        self.probes.clone()
    }

    /// Incrementally absorbs version `v`, which must be the version the
    /// archive just merged: the trees of nodes visible at `v` are rebuilt
    /// (their child sets or child timestamps may have changed — including
    /// terminations, which the per-node rebuild picks up); everything else
    /// is untouched, so maintenance costs O(|version|) instead of the
    /// paper's per-version full rebuild.
    pub fn apply_version(&mut self, archive: &Archive, v: u32) {
        let root = archive.root();
        let root_time = archive.effective_time(root);
        if !root_time.contains(v) {
            return;
        }
        self.apply_rec(archive, root, &root_time, v);
    }

    fn apply_rec(&mut self, archive: &Archive, id: ANodeId, eff: &TimeSet, v: u32) {
        if !archive.children(id).is_empty() {
            self.trees.insert(id, TsTree::build(archive, id, eff));
        }
        for &c in archive.children(id) {
            let ceff = archive.node(c).time.clone().unwrap_or_else(|| eff.clone());
            if ceff.contains(v) {
                self.apply_rec(archive, c, &ceff, v);
            } else {
                // A frontier split allocates a *new* stamp node that is
                // invisible at `v` (it holds the old alternatives with
                // `T−{i}`) and re-parents the old content beneath it. The
                // moved nodes keep their valid trees; only the fresh stamp
                // lacks one — build it, stopping at already-treed nodes.
                self.adopt(archive, c, &ceff);
            }
        }
    }

    /// Builds trees for a subtree that entered the archive *invisible* at
    /// the version being applied (re-parented frontier content). Nodes
    /// that already have a tree are complete below — recursion stops.
    fn adopt(&mut self, archive: &Archive, id: ANodeId, eff: &TimeSet) {
        if archive.children(id).is_empty() || self.trees.contains_key(&id) {
            return;
        }
        self.trees.insert(id, TsTree::build(archive, id, eff));
        for &c in archive.children(id) {
            let ceff = archive.node(c).time.clone().unwrap_or_else(|| eff.clone());
            self.adopt(archive, c, &ceff);
        }
    }

    /// The children of `parent` relevant to version `v`, using the tree.
    pub fn relevant_children(&self, parent: ANodeId, v: u32) -> Vec<ANodeId> {
        match self.trees.get(&parent) {
            Some(t) => {
                let (out, p) = t.relevant(v);
                self.probes.add(p as u64);
                out
            }
            None => Vec::new(),
        }
    }

    /// Probe counter since construction (or the last reset).
    pub fn probes(&self) -> usize {
        usize::try_from(self.probes.get()).unwrap_or(usize::MAX)
    }

    /// Resets the probe counter — a measurement-window convenience for
    /// benches on a *detached* index; a registry-bound counter should be
    /// read as a monotone total and differenced.
    pub fn reset_probes(&self) {
        self.probes.reset();
    }

    /// The tree of one node (for inspection).
    pub fn tree(&self, parent: ANodeId) -> Option<&TsTree> {
        self.trees.get(&parent)
    }

    /// Retrieves version `v` via the index: only relevant subtrees are
    /// visited. Returns the document plus the probe count consumed by
    /// *this call* (measured as a delta, so the cumulative counter stays
    /// monotone and registry-bound counters are never cleared).
    pub fn retrieve(&self, archive: &Archive, v: u32) -> (Option<xarch_xml::Document>, usize) {
        let before = self.probes.get();
        let spent = |probes: &Counter| {
            usize::try_from(probes.get().saturating_sub(before)).unwrap_or(usize::MAX)
        };
        if !archive.has_version(v) {
            return (None, 0);
        }
        let vis = self.relevant_children(archive.root(), v);
        let doc_root = vis
            .into_iter()
            .find(|&c| matches!(archive.node(c).kind, xarch_core::AKind::Element(_)));
        let Some(doc_root) = doc_root else {
            return (None, spent(&self.probes));
        };
        let tag = archive.tag_name(doc_root).expect("element").to_owned();
        let mut doc = xarch_xml::Document::new(&tag);
        let did = doc.root();
        copy_attrs(archive, doc_root, &mut doc, did);
        self.emit(archive, doc_root, v, &mut doc, did);
        (Some(doc), spent(&self.probes))
    }

    /// Materializes the subtree rooted at element `id` at version `v`,
    /// pruning with the timestamp trees: only subtrees whose union
    /// timestamp contains `v` are entered, so the cost is proportional to
    /// the answer. The caller supplies `id` (typically located via the
    /// history index); probes accumulate on the shared counter.
    pub fn retrieve_subtree(
        &self,
        archive: &Archive,
        id: ANodeId,
        v: u32,
    ) -> Option<xarch_xml::Document> {
        if !archive.has_version(v) || !archive.exists_at(id, v) {
            return None;
        }
        let tag = archive.tag_name(id)?.to_owned();
        let mut doc = xarch_xml::Document::new(&tag);
        let did = doc.root();
        copy_attrs(archive, id, &mut doc, did);
        self.emit(archive, id, v, &mut doc, did);
        Some(doc)
    }

    fn emit(
        &self,
        archive: &Archive,
        id: ANodeId,
        v: u32,
        doc: &mut xarch_xml::Document,
        did: xarch_xml::NodeId,
    ) {
        for c in self.relevant_children(id, v) {
            match &archive.node(c).kind {
                xarch_core::AKind::Stamp => self.emit(archive, c, v, doc, did),
                xarch_core::AKind::Element(s) => {
                    let tag = archive.syms().resolve(*s).to_owned();
                    let e = doc.add_element(did, &tag);
                    copy_attrs(archive, c, doc, e);
                    self.emit(archive, c, v, doc, e);
                }
                xarch_core::AKind::Text(t) => {
                    let t = t.clone();
                    doc.add_text(did, &t);
                }
            }
        }
    }
}

fn copy_attrs(
    archive: &Archive,
    id: ANodeId,
    doc: &mut xarch_xml::Document,
    did: xarch_xml::NodeId,
) {
    let attrs: Vec<(String, String)> = archive
        .node(id)
        .attrs
        .iter()
        .map(|(s, v)| (archive.syms().resolve(*s).to_owned(), v.clone()))
        .collect();
    for (n, v) in attrs {
        doc.set_attr(did, &n, &v);
    }
}

fn build_rec(
    archive: &Archive,
    id: ANodeId,
    inherited: &TimeSet,
    trees: &mut HashMap<ANodeId, TsTree>,
) {
    if archive.children(id).is_empty() {
        return;
    }
    trees.insert(id, TsTree::build(archive, id, inherited));
    for &c in archive.children(id) {
        let eff = archive
            .node(c)
            .time
            .clone()
            .unwrap_or_else(|| inherited.clone());
        build_rec(archive, c, &eff, trees);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xarch_core::{equiv_modulo_key_order, Archive};
    use xarch_keys::KeySpec;
    use xarch_xml::parse;

    fn spec() -> KeySpec {
        KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))\n(/db/rec, (val, {}))").unwrap()
    }

    fn doc_with(ids: &[u32]) -> xarch_xml::Document {
        let mut s = String::from("<db>");
        for i in ids {
            s.push_str(&format!("<rec><id>{i}</id><val>v{i}</val></rec>"));
        }
        s.push_str("</db>");
        parse(&s).unwrap()
    }

    fn sample_archive() -> (Archive, Vec<xarch_xml::Document>) {
        let mut a = Archive::new(spec());
        // growing database, one record added per version
        let versions: Vec<_> = (1..=8u32)
            .map(|v| doc_with(&(0..v).collect::<Vec<_>>()))
            .collect();
        for d in &versions {
            a.add_version(d).unwrap();
        }
        (a, versions)
    }

    #[test]
    fn indexed_retrieval_matches_scan() {
        let (a, versions) = sample_archive();
        let idx = TimestampIndex::build(&a);
        for (i, want) in versions.iter().enumerate() {
            let v = i as u32 + 1;
            let (got, probes) = idx.retrieve(&a, v);
            let got = got.expect("version exists");
            assert!(equiv_modulo_key_order(&got, want, a.spec()), "version {v}");
            assert!(probes > 0);
        }
    }

    #[test]
    fn early_versions_probe_fewer_nodes() {
        // Version 1 touches 1/8 of the records: pruning must show.
        let (a, _) = sample_archive();
        let idx = TimestampIndex::build(&a);
        let (_, probes_v1) = idx.retrieve(&a, 1);
        let (_, probes_v8) = idx.retrieve(&a, 8);
        assert!(
            probes_v1 < probes_v8,
            "v1 probes {probes_v1} should be < v8 probes {probes_v8}"
        );
    }

    #[test]
    fn probe_bound_respected() {
        let (a, _) = sample_archive();
        let idx = TimestampIndex::build(&a);
        // for each node with fanout k, probes ≤ 2k + 1 on any version
        let db = a.children(a.root())[0];
        let tree = idx.tree(db).expect("db has children");
        let k = tree.fanout();
        for v in 1..=8 {
            let (_, p) = tree.relevant(v);
            assert!(p <= 2 * k + 1, "version {v}: {p} probes for k={k}");
        }
    }

    #[test]
    fn missing_version_is_none() {
        let (a, _) = sample_archive();
        let idx = TimestampIndex::build(&a);
        assert!(idx.retrieve(&a, 0).0.is_none());
        assert!(idx.retrieve(&a, 99).0.is_none());
    }

    #[test]
    fn empty_node_has_no_tree() {
        let (a, _) = sample_archive();
        let idx = TimestampIndex::build(&a);
        // leaf text nodes have no trees
        assert!(idx.relevant_children(ANodeId(u32::MAX - 1), 1).is_empty());
    }
}
