//! [`IndexedArchive`]: the in-memory archiver with the §7 index
//! structures kept current, answering temporal queries in time
//! proportional to the answer.
//!
//! The plain [`Archive`] answers `retrieve` with a full scan and
//! `history` with a per-level sibling scan. This wrapper maintains the
//! history index (§7.2, sorted child-key lists) and the timestamp index
//! (§7.1, per-node timestamp trees) *incrementally* after every merge, so:
//!
//! * `history` / `locate` cost `O(l log d)` comparisons,
//! * `retrieve` and `as_of` prune invisible subtrees via the timestamp
//!   trees — `O(answer)` probes instead of `O(archive)` nodes,
//! * `range` reads straight off one sorted child list.
//!
//! Index maintenance after `add_version` walks only the nodes visible at
//! the new version (see [`HistoryIndex::apply_version`]), so the archiver
//! keeps the paper's merge complexity.

use std::io::Write;
use std::ops::RangeInclusive;

use xarch_core::{
    Archive, Compaction, ElementHistory, KeyQuery, RangeEntry, StoreError, StoreReader, StoreStats,
    TimeSet, VersionStore,
};
use xarch_keys::KeySpec;
use xarch_xml::Document;

use crate::keyindex::HistoryIndex;
use crate::tstree::TimestampIndex;

/// An in-memory [`Archive`] bundled with incrementally maintained §7
/// indexes; implements the full [`VersionStore`] query surface with
/// indexed fast paths.
#[derive(Debug, Clone)]
pub struct IndexedArchive {
    archive: Archive,
    hist: HistoryIndex,
    ts: TimestampIndex,
}

impl IndexedArchive {
    /// An empty indexed archive governed by `spec`.
    pub fn new(spec: KeySpec) -> Self {
        Self::with_compaction(spec, Compaction::default())
    }

    /// An empty indexed archive with an explicit frontier compaction mode.
    pub fn with_compaction(spec: KeySpec, compaction: Compaction) -> Self {
        Self::from_archive(Archive::with_compaction(spec, compaction))
    }

    /// Indexes an existing archive (one full build; afterwards maintenance
    /// is incremental).
    pub fn from_archive(archive: Archive) -> Self {
        Self {
            hist: HistoryIndex::build(&archive),
            ts: TimestampIndex::build(&archive),
            archive,
        }
    }

    /// The underlying archive.
    pub fn archive(&self) -> &Archive {
        &self.archive
    }

    /// The §7.2 history index (probe counters live here).
    pub fn history_index(&self) -> &HistoryIndex {
        &self.hist
    }

    /// The §7.1 timestamp index (probe counters live here).
    pub fn timestamp_index(&self) -> &TimestampIndex {
        &self.ts
    }

    /// Resets both probe counters (for measurements on a detached index;
    /// registry-bound counters should be differenced instead).
    pub fn reset_probes(&self) {
        self.hist.reset();
        self.ts.reset_probes();
    }

    /// Bind both probe counters to `registry` under the canonical names
    /// `index.history.comparisons` / `index.timestamp.probes`, carrying
    /// the counts so far — the §7 accounting then has one source of truth
    /// shared by the store and the exposition writers.
    pub fn bind_observability(&mut self, registry: &xarch_obs::Registry) {
        self.hist.bind_counter(registry.counter(
            "index.history.comparisons",
            "comparisons",
            "binary-search comparisons spent descending the history index",
        ));
        self.ts.bind_counter(registry.counter(
            "index.timestamp.probes",
            "probes",
            "timestamp-tree probes spent pruning invisible subtrees",
        ));
    }

    fn absorb(&mut self, v: u32) {
        self.hist.apply_version(&self.archive, v);
        self.ts.apply_version(&self.archive, v);
    }
}

impl StoreReader for IndexedArchive {
    fn spec(&self) -> &KeySpec {
        self.archive.spec()
    }

    fn latest(&self) -> u32 {
        self.archive.latest()
    }

    fn has_version(&self, v: u32) -> bool {
        self.archive.has_version(v)
    }

    fn retrieve(&self, v: u32) -> Result<Option<Document>, StoreError> {
        Ok(self.ts.retrieve(&self.archive, v).0)
    }

    fn retrieve_into(&self, v: u32, out: &mut dyn Write) -> Result<bool, StoreError> {
        Ok(self.archive.retrieve_into(v, out)?)
    }

    fn history(&self, steps: &[KeyQuery]) -> Result<Option<TimeSet>, StoreError> {
        Ok(self.hist.locate(&self.archive, steps).map(|(_, t)| t))
    }

    fn stats(&self) -> Result<StoreStats, StoreError> {
        Ok(StoreStats::from_archive(
            self.archive.stats(),
            self.archive.latest(),
            self.archive.size_bytes(),
        ))
    }

    fn stats_at(&self, v: u32) -> Result<StoreStats, StoreError> {
        let v = v.min(self.archive.latest());
        Ok(StoreStats::from_archive(
            self.archive.stats_at(v),
            v,
            self.archive.size_bytes_at(v),
        ))
    }

    fn as_of(&self, steps: &[KeyQuery], v: u32) -> Result<Option<Document>, StoreError> {
        if !self.archive.has_version(v) {
            return Ok(None);
        }
        if steps.is_empty() {
            return self.retrieve(v);
        }
        let Some((id, time)) = self.hist.locate(&self.archive, steps) else {
            return Ok(None);
        };
        if !time.contains(v) {
            return Ok(None);
        }
        Ok(self.ts.retrieve_subtree(&self.archive, id, v))
    }

    fn history_values(&self, steps: &[KeyQuery]) -> Result<Option<ElementHistory>, StoreError> {
        // one locate, then one pruned subtree emit per version it exists in
        let Some((id, existence)) = self.hist.locate(&self.archive, steps) else {
            return Ok(None);
        };
        let root = self.archive.root();
        let mut values: Vec<(TimeSet, String)> = Vec::new();
        for v in existence.versions() {
            // the empty path addresses the synthetic root: its "content" is
            // the whole document (absent on empty versions), same as the
            // default fallback — never the synthetic <root> wrapper itself
            let sub = if id == root {
                self.ts.retrieve(&self.archive, v).0
            } else {
                self.ts.retrieve_subtree(&self.archive, id, v)
            };
            let Some(sub) = sub else {
                continue;
            };
            let content = xarch_xml::writer::to_compact_string(&sub);
            match values.iter_mut().find(|(_, c)| *c == content) {
                Some((t, _)) => t.insert(v),
                None => values.push((TimeSet::from_version(v), content)),
            }
        }
        Ok(Some(ElementHistory { existence, values }))
    }

    fn range(
        &self,
        prefix: &[KeyQuery],
        versions: RangeInclusive<u32>,
    ) -> Result<Vec<RangeEntry>, StoreError> {
        let lo = (*versions.start()).max(1);
        let hi = (*versions.end()).min(self.archive.latest());
        Ok(self.hist.range_of(&self.archive, prefix, lo, hi))
    }
}

impl VersionStore for IndexedArchive {
    fn add_version(&mut self, doc: &Document) -> Result<u32, StoreError> {
        let v = self.archive.add_version(doc)?;
        self.absorb(v);
        Ok(v)
    }

    fn add_empty_version(&mut self) -> Result<u32, StoreError> {
        let v = self.archive.add_empty_version();
        self.absorb(v);
        Ok(v)
    }

    fn add_versions(&mut self, docs: &[Document]) -> Result<Vec<u32>, StoreError> {
        // one one-pass batch merge, then one batched index apply: each
        // version's incremental maintenance walks only the nodes visible
        // at it, and applying them in ascending order over the final
        // archive state resolves the same timestamps a per-merge apply
        // would have seen (merges never disturb nodes invisible to them)
        let assigned = self.archive.add_versions(docs)?;
        for &v in &assigned {
            self.absorb(v);
        }
        Ok(assigned)
    }

    fn checkpoint_state(&self) -> Result<Option<Vec<u8>>, StoreError> {
        // the indexes are derived data: the archive snapshot alone is the
        // state, so a checkpoint stays restorable by a plain Archive (and
        // vice versa) when `.with_index()` is toggled between runs
        Ok(Some(xarch_core::state::encode_archive(&self.archive)))
    }

    fn restore_checkpoint(&mut self, state: &[u8]) -> Result<bool, StoreError> {
        if self.archive.latest() != 0 {
            return Err(StoreError::Backend(
                "restore_checkpoint requires an empty store".into(),
            ));
        }
        let decoded = xarch_core::state::decode_archive(
            state,
            self.archive.spec(),
            self.archive.compaction(),
        )?;
        let Some(restored) = decoded else {
            return Ok(false);
        };
        // rebuild the derived indexes, then re-bind the live counter
        // handles so registry-bound probe accounting survives the restore
        let hist_counter = self.hist.counter_handle();
        let ts_counter = self.ts.counter_handle();
        self.archive = restored;
        self.hist = HistoryIndex::build(&self.archive);
        self.ts = TimestampIndex::build(&self.archive);
        self.hist.bind_counter(hist_counter);
        self.ts.bind_counter(ts_counter);
        Ok(true)
    }

    fn fork(&self) -> Result<Box<dyn VersionStore>, StoreError> {
        // archive and derived indexes clone structurally; the clone shares
        // the registry-bound probe counter handles, so replica probes keep
        // charging the same `index.*` counters
        Ok(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xarch_core::equiv_modulo_key_order;
    use xarch_xml::parse;

    fn spec() -> KeySpec {
        KeySpec::parse("(/, (db, {}))\n(/db, (rec, {id}))\n(/db/rec, (val, {}))").unwrap()
    }

    fn versions() -> Vec<Document> {
        [
            "<db><rec><id>1</id><val>a</val></rec></db>",
            "<db><rec><id>1</id><val>b</val></rec><rec><id>2</id><val>c</val></rec></db>",
            "<db><rec><id>2</id><val>c</val></rec></db>",
        ]
        .iter()
        .map(|s| parse(s).unwrap())
        .collect()
    }

    #[test]
    fn indexed_store_matches_plain_archive() {
        let mut plain = Archive::new(spec());
        let mut indexed = IndexedArchive::new(spec());
        for d in versions() {
            plain.add_version(&d).unwrap();
            indexed.add_version(&d).unwrap();
        }
        for v in 0..=4u32 {
            let want = plain.retrieve(v);
            let got = indexed.retrieve(v).unwrap();
            assert_eq!(want.is_some(), got.is_some(), "v{v}");
            if let (Some(w), Some(g)) = (want, got) {
                assert!(equiv_modulo_key_order(&g, &w, plain.spec()), "v{v}");
            }
        }
        let q = vec![
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", "1"),
        ];
        assert_eq!(
            indexed.history(&q).unwrap(),
            plain.history(&q),
            "history diverged"
        );
        for v in 1..=3u32 {
            let want = plain.as_of(&q, v);
            let got = indexed.as_of(&q, v).unwrap();
            assert_eq!(want.is_some(), got.is_some(), "as_of v{v}");
            if let (Some(w), Some(g)) = (want, got) {
                assert!(equiv_modulo_key_order(&g, &w, plain.spec()), "as_of v{v}");
            }
        }
        let prefix = vec![KeyQuery::new("db")];
        assert_eq!(
            indexed.range(&prefix, 1..=3).unwrap(),
            plain.range(&prefix, 1..=3)
        );
    }

    #[test]
    fn history_values_tracks_content_changes() {
        let mut s = IndexedArchive::new(spec());
        for d in versions() {
            s.add_version(&d).unwrap();
        }
        let q = vec![
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", "1"),
        ];
        let h = s.history_values(&q).unwrap().expect("rec 1 archived");
        assert_eq!(h.existence.to_string(), "1-2");
        assert_eq!(h.values.len(), 2, "{:?}", h.values);
        assert!(h.values[0].1.contains("<val>a</val>"));
        assert_eq!(h.values[0].0.to_string(), "1");
        assert!(h.values[1].1.contains("<val>b</val>"));
        assert_eq!(h.values[1].0.to_string(), "2");
    }

    #[test]
    fn checkpoint_restore_rebuilds_indexes_and_keeps_bound_counters() {
        let mut s = IndexedArchive::new(spec());
        for d in versions() {
            s.add_version(&d).unwrap();
        }
        let state = s
            .checkpoint_state()
            .unwrap()
            .expect("indexed archive checkpoints");

        let registry = xarch_obs::Registry::new();
        let mut fresh = IndexedArchive::new(spec());
        fresh.bind_observability(&registry);
        assert!(fresh.restore_checkpoint(&state).unwrap());
        assert_eq!(fresh.latest(), 3);
        let q = vec![
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", "1"),
        ];
        assert_eq!(fresh.history(&q).unwrap().unwrap().to_string(), "1-2");
        // the registry-bound probe counters must still be the live handles
        let _ = fresh.as_of(&q, 2).unwrap().expect("rec 1 at v2");
        let comparisons = registry
            .get_counter("index.history.comparisons")
            .expect("still bound");
        assert!(comparisons.get() > 0, "restore detached the counter");

        // a plain-archive restore also accepts an IndexedArchive state
        let mut plain = Archive::new(spec());
        assert!(plain.restore_checkpoint(&state).unwrap());
        assert_eq!(plain.latest(), 3);

        // populated stores refuse to restore
        assert!(fresh.restore_checkpoint(&state).is_err());
    }

    #[test]
    fn probes_stay_proportional_to_answer() {
        // 64 records, only record 0 queried: locate + subtree emit must
        // probe far fewer nodes than the archive holds
        let mut s = IndexedArchive::new(spec());
        for v in 0..4u32 {
            let mut src = String::from("<db>");
            for i in 0..64 {
                src.push_str(&format!("<rec><id>{i}</id><val>v{v}</val></rec>"));
            }
            src.push_str("</db>");
            s.add_version(&parse(&src).unwrap()).unwrap();
        }
        s.reset_probes();
        let q = vec![
            KeyQuery::new("db"),
            KeyQuery::new("rec").with_text("id", "7"),
        ];
        let sub = s.as_of(&q, 2).unwrap().expect("exists");
        assert!(xarch_xml::writer::to_compact_string(&sub).contains("<id>7</id>"));
        let scan = s.archive().scan_cost();
        let touched = s.history_index().comparisons() + s.timestamp_index().probes();
        assert!(
            touched * 4 < scan,
            "indexed as_of touched {touched} vs scan {scan}"
        );
    }
}
