//! The history index of §7.2: "maintain, for each keyed node in the
//! archive, a sorted list of key values of children nodes" — a binary
//! search per level answers a temporal-history query in `O(l log d)`
//! comparisons, where `l` is the key-path length and `d` the maximum
//! degree.
//!
//! The index is maintained *incrementally*: [`HistoryIndex::apply_version`]
//! walks only the nodes visible at the newly merged version (the nested
//! merge touches nothing else — archive-only subtrees keep their resolved
//! timestamps), so keeping the index current costs O(|version|), not
//! O(|archive|).

use std::cmp::Ordering;
use std::collections::HashMap;

use xarch_core::{ANodeId, Archive, KeyQuery, RangeEntry, TimeSet};
use xarch_obs::Counter;

/// One record of a sorted child list: the child id plus, per the paper,
/// an "index offset" (here: the child's own list lives in the same map)
/// and a "timestamp offset" (here: the resolved effective timestamp).
#[derive(Debug, Clone)]
struct Entry {
    child: ANodeId,
    time: TimeSet,
}

/// Sorted child-key lists for every keyed node.
///
/// The comparison counter is an [`xarch_obs::Counter`] (atomic under the
/// hood) so a built index can be shared across reader threads
/// (`HistoryIndex` is `Send + Sync`; lookups take `&self`) — and so the
/// same handle can be registered with an observability registry, making
/// the §7 probe accounting read from one source of truth.
#[derive(Debug)]
pub struct HistoryIndex {
    lists: HashMap<ANodeId, Vec<Entry>>,
    comparisons: Counter,
}

impl Clone for HistoryIndex {
    fn clone(&self) -> Self {
        Self {
            lists: self.lists.clone(),
            // detached: the clone keeps the count but not the registration
            comparisons: Counter::with_value(self.comparisons.get()),
        }
    }
}

impl Default for HistoryIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl HistoryIndex {
    /// An empty index (for an empty archive); grow it with
    /// [`HistoryIndex::apply_version`].
    pub fn new() -> Self {
        Self {
            lists: HashMap::new(),
            comparisons: Counter::new(),
        }
    }

    /// Builds the index with a single scan of the archive ("all key values
    /// of children nodes of any node x are known by the time x is exited").
    pub fn build(archive: &Archive) -> Self {
        let mut lists: HashMap<ANodeId, Vec<Entry>> = HashMap::new();
        let root_time = archive.effective_time(archive.root());
        build_rec(archive, archive.root(), &root_time, &mut lists);
        Self {
            lists,
            comparisons: Counter::new(),
        }
    }

    /// Replace the comparison counter with `counter` (typically one
    /// registered under `index.history.comparisons`), carrying the count
    /// so far into it.
    pub fn bind_counter(&mut self, counter: Counter) {
        counter.add(self.comparisons.get());
        self.comparisons = counter;
    }

    /// The live comparison-counter handle (shared, cheap to clone) — lets
    /// a checkpoint restore rebuild the index and keep recording into an
    /// already registry-bound counter.
    pub(crate) fn counter_handle(&self) -> Counter {
        self.comparisons.clone()
    }

    /// Incrementally absorbs version `v`, which must be the version the
    /// archive just merged. Only nodes visible at `v` (and their immediate
    /// children, whose terminations the rebuild picks up) can have changed
    /// child lists or resolved timestamps, so the walk recurses only into
    /// the subtrees version `v` touches.
    pub fn apply_version(&mut self, archive: &Archive, v: u32) {
        let root = archive.root();
        let root_time = archive.effective_time(root);
        if !root_time.contains(v) {
            return;
        }
        self.apply_rec(archive, root, &root_time, v);
    }

    fn apply_rec(&mut self, archive: &Archive, id: ANodeId, eff: &TimeSet, v: u32) {
        let mut entries: Vec<Entry> = Vec::new();
        for &c in archive.children(id) {
            let ceff = archive.node(c).time.clone().unwrap_or_else(|| eff.clone());
            if archive.node(c).key.is_some() {
                entries.push(Entry {
                    child: c,
                    time: ceff.clone(),
                });
            }
            if ceff.contains(v) {
                self.apply_rec(archive, c, &ceff, v);
            }
        }
        if !entries.is_empty() {
            entries.sort_by(|a, b| cmp_children(archive, a.child, b.child));
            self.lists.insert(id, entries);
        }
    }

    /// Resolves a key-query path to the archive node it addresses plus
    /// that node's effective timestamp, by one binary search per step. An
    /// empty path addresses the synthetic root.
    pub fn locate(&self, archive: &Archive, steps: &[KeyQuery]) -> Option<(ANodeId, TimeSet)> {
        let mut cur = archive.root();
        let mut time = archive.effective_time(cur);
        for step in steps {
            let list = self.lists.get(&cur)?;
            let mut lo = 0usize;
            let mut hi = list.len();
            let mut found = None;
            while lo < hi {
                let mid = (lo + hi) / 2;
                self.comparisons.inc();
                match archive.query_cmp(list[mid].child, step) {
                    Ordering::Less => lo = mid + 1,
                    Ordering::Greater => hi = mid,
                    Ordering::Equal => {
                        found = Some(mid);
                        break;
                    }
                }
            }
            let idx = found?;
            time = list[idx].time.clone();
            cur = list[idx].child;
        }
        Some((cur, time))
    }

    /// Answers a temporal-history query by one binary search per step.
    /// Returns the element's effective timestamp.
    pub fn history(&self, archive: &Archive, steps: &[KeyQuery]) -> Option<TimeSet> {
        if steps.is_empty() {
            return None;
        }
        self.locate(archive, steps).map(|(_, t)| t)
    }

    /// Range scan straight off the sorted lists: the keyed children of the
    /// node addressed by `prefix`, with lifetimes clamped to `lo..=hi`
    /// (children whose lifetime misses the window are dropped). The lists
    /// are kept in label order, so no sort is needed.
    pub fn range_of(
        &self,
        archive: &Archive,
        prefix: &[KeyQuery],
        lo: u32,
        hi: u32,
    ) -> Vec<RangeEntry> {
        let Some((node, _)) = self.locate(archive, prefix) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        if let Some(list) = self.lists.get(&node) {
            for e in list {
                let time = e.time.clamp_range(lo, hi);
                if time.is_empty() {
                    continue;
                }
                if let Some(step) = archive.step_of(e.child) {
                    out.push(RangeEntry { step, time });
                }
            }
        }
        out
    }

    /// Comparison counter (reset with [`HistoryIndex::reset`]).
    pub fn comparisons(&self) -> usize {
        usize::try_from(self.comparisons.get()).unwrap_or(usize::MAX)
    }

    /// Resets the comparison counter — a measurement-window convenience
    /// for benches; a registry-bound counter should instead be read as a
    /// monotone total and differenced.
    pub fn reset(&self) {
        self.comparisons.reset();
    }

    /// Maximum list length `d` (for the `O(l log d)` bound).
    pub fn max_degree(&self) -> usize {
        self.lists.values().map(|l| l.len()).max().unwrap_or(0)
    }
}

fn build_rec(
    archive: &Archive,
    id: ANodeId,
    inherited: &TimeSet,
    lists: &mut HashMap<ANodeId, Vec<Entry>>,
) {
    let mut entries: Vec<Entry> = Vec::new();
    for &c in archive.children(id) {
        let eff = archive
            .node(c)
            .time
            .clone()
            .unwrap_or_else(|| inherited.clone());
        if archive.node(c).key.is_some() {
            entries.push(Entry {
                child: c,
                time: eff.clone(),
            });
        }
        build_rec(archive, c, &eff, lists);
    }
    if !entries.is_empty() {
        // sort by (tag, key value) — the same order query_cmp probes
        entries.sort_by(|a, b| cmp_children(archive, a.child, b.child));
        lists.insert(id, entries);
    }
}

fn cmp_children(archive: &Archive, a: ANodeId, b: ANodeId) -> Ordering {
    let ta = archive.tag_name(a).unwrap_or("");
    let tb = archive.tag_name(b).unwrap_or("");
    ta.cmp(tb)
        .then_with(|| match (&archive.node(a).key, &archive.node(b).key) {
            (Some(ka), Some(kb)) => ka.cmp_parts(kb),
            _ => Ordering::Equal,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xarch_keys::KeySpec;
    use xarch_xml::parse;

    fn spec() -> KeySpec {
        KeySpec::parse(
            "(/, (db, {}))\n(/db, (dept, {name}))\n(/db/dept, (emp, {fn, ln}))\n\
             (/db/dept/emp, (sal, {}))",
        )
        .unwrap()
    }

    fn sample() -> Archive {
        let mut a = Archive::new(spec());
        let v1 = parse(
            "<db><dept><name>finance</name>\
             <emp><fn>John</fn><ln>Doe</ln><sal>90K</sal></emp></dept></db>",
        )
        .unwrap();
        let v2 = parse(
            "<db><dept><name>finance</name>\
             <emp><fn>John</fn><ln>Doe</ln><sal>95K</sal></emp>\
             <emp><fn>Jane</fn><ln>Smith</ln><sal>80K</sal></emp></dept>\
             <dept><name>marketing</name></dept></db>",
        )
        .unwrap();
        a.add_version(&v1).unwrap();
        a.add_version(&v2).unwrap();
        a
    }

    #[test]
    fn indexed_history_matches_naive() {
        let a = sample();
        let idx = HistoryIndex::build(&a);
        let queries: Vec<Vec<KeyQuery>> = vec![
            vec![KeyQuery::new("db")],
            vec![
                KeyQuery::new("db"),
                KeyQuery::new("dept").with_text("name", "finance"),
            ],
            vec![
                KeyQuery::new("db"),
                KeyQuery::new("dept").with_text("name", "finance"),
                KeyQuery::new("emp")
                    .with_text("fn", "Jane")
                    .with_text("ln", "Smith"),
            ],
            vec![
                KeyQuery::new("db"),
                KeyQuery::new("dept").with_text("name", "marketing"),
            ],
        ];
        for q in &queries {
            assert_eq!(idx.history(&a, q), a.history(q), "query {q:?}");
        }
    }

    #[test]
    fn incremental_maintenance_matches_full_rebuild() {
        // after every add, an incrementally maintained index must answer
        // exactly like one rebuilt from scratch
        let versions = [
            "<db><dept><name>finance</name>\
             <emp><fn>John</fn><ln>Doe</ln><sal>90K</sal></emp></dept></db>",
            "<db><dept><name>finance</name>\
             <emp><fn>John</fn><ln>Doe</ln><sal>95K</sal></emp>\
             <emp><fn>Jane</fn><ln>Smith</ln><sal>80K</sal></emp></dept></db>",
            // Jane disappears, marketing appears
            "<db><dept><name>finance</name>\
             <emp><fn>John</fn><ln>Doe</ln><sal>95K</sal></emp></dept>\
             <dept><name>marketing</name></dept></db>",
            // Jane returns with a new salary
            "<db><dept><name>finance</name>\
             <emp><fn>John</fn><ln>Doe</ln><sal>99K</sal></emp>\
             <emp><fn>Jane</fn><ln>Smith</ln><sal>85K</sal></emp></dept></db>",
        ];
        let mut a = Archive::new(spec());
        let mut idx = HistoryIndex::new();
        for (n, src) in versions.iter().enumerate() {
            let v = a.add_version(&parse(src).unwrap()).unwrap();
            idx.apply_version(&a, v);
            let rebuilt = HistoryIndex::build(&a);
            let queries: Vec<Vec<KeyQuery>> = vec![
                vec![KeyQuery::new("db")],
                vec![
                    KeyQuery::new("db"),
                    KeyQuery::new("dept").with_text("name", "finance"),
                ],
                vec![
                    KeyQuery::new("db"),
                    KeyQuery::new("dept").with_text("name", "marketing"),
                ],
                vec![
                    KeyQuery::new("db"),
                    KeyQuery::new("dept").with_text("name", "finance"),
                    KeyQuery::new("emp")
                        .with_text("fn", "Jane")
                        .with_text("ln", "Smith"),
                ],
                vec![
                    KeyQuery::new("db"),
                    KeyQuery::new("dept").with_text("name", "finance"),
                    KeyQuery::new("emp")
                        .with_text("fn", "Jane")
                        .with_text("ln", "Smith"),
                    KeyQuery::new("sal"),
                ],
            ];
            for q in &queries {
                assert_eq!(
                    idx.history(&a, q),
                    rebuilt.history(&a, q),
                    "after version {}: query {q:?}",
                    n + 1
                );
                assert_eq!(idx.history(&a, q), a.history(q), "naive, v{}", n + 1);
            }
        }
        // empty versions terminate everything but the root
        let v = a.add_empty_version();
        idx.apply_version(&a, v);
        let rebuilt = HistoryIndex::build(&a);
        let q = vec![KeyQuery::new("db")];
        assert_eq!(idx.history(&a, &q), rebuilt.history(&a, &q));
        assert_eq!(idx.history(&a, &q), a.history(&q));
    }

    #[test]
    fn locate_and_range_walk_the_lists() {
        let a = sample();
        let idx = HistoryIndex::build(&a);
        let (root, t) = idx.locate(&a, &[]).unwrap();
        assert_eq!(root, a.root());
        assert_eq!(t.to_string(), "1-2");
        let prefix = vec![KeyQuery::new("db")];
        let hits = idx.range_of(&a, &prefix, 1, 2);
        assert_eq!(hits.len(), 2, "{hits:?}"); // two departments
        assert_eq!(hits[0].step.tag, "dept");
        assert_eq!(hits[0].time.to_string(), "1-2"); // finance
        assert_eq!(hits[1].time.to_string(), "2"); // marketing
                                                   // window clamps: only version 1
        let hits = idx.range_of(&a, &prefix, 1, 1);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].time.to_string(), "1");
    }

    #[test]
    fn missing_element_is_none() {
        let a = sample();
        let idx = HistoryIndex::build(&a);
        let q = vec![
            KeyQuery::new("db"),
            KeyQuery::new("dept").with_text("name", "hr"),
        ];
        assert_eq!(idx.history(&a, &q), None);
        assert_eq!(a.history(&q), None);
    }

    #[test]
    fn comparison_count_is_logarithmic() {
        // Wide sibling list: lookups must do ~log2(d) comparisons per level.
        let mut s = String::from("<db><dept><name>finance</name>");
        for i in 0..256 {
            s.push_str(&format!("<emp><fn>F{i:03}</fn><ln>L{i:03}</ln></emp>"));
        }
        s.push_str("</dept></db>");
        let mut a = Archive::new(spec());
        a.add_version(&parse(&s).unwrap()).unwrap();
        let idx = HistoryIndex::build(&a);
        idx.reset();
        let q = vec![
            KeyQuery::new("db"),
            KeyQuery::new("dept").with_text("name", "finance"),
            KeyQuery::new("emp")
                .with_text("fn", "F100")
                .with_text("ln", "L100"),
        ];
        let t = idx.history(&a, &q).unwrap();
        assert_eq!(t.to_string(), "1");
        // 3 levels, d ≤ 257 → well under 3 * (log2(257)+1) ≈ 27
        assert!(
            idx.comparisons() <= 30,
            "comparisons = {}",
            idx.comparisons()
        );
        assert!(idx.max_degree() >= 256);
    }

    #[test]
    fn history_reflects_reappearance() {
        let mut a = sample();
        // v3: Jane disappears, v4: Jane returns
        let v3 = parse(
            "<db><dept><name>finance</name>\
             <emp><fn>John</fn><ln>Doe</ln><sal>95K</sal></emp></dept></db>",
        )
        .unwrap();
        let v4 = parse(
            "<db><dept><name>finance</name>\
             <emp><fn>John</fn><ln>Doe</ln><sal>95K</sal></emp>\
             <emp><fn>Jane</fn><ln>Smith</ln><sal>85K</sal></emp></dept></db>",
        )
        .unwrap();
        a.add_version(&v3).unwrap();
        a.add_version(&v4).unwrap();
        let idx = HistoryIndex::build(&a);
        let q = vec![
            KeyQuery::new("db"),
            KeyQuery::new("dept").with_text("name", "finance"),
            KeyQuery::new("emp")
                .with_text("fn", "Jane")
                .with_text("ln", "Smith"),
        ];
        assert_eq!(idx.history(&a, &q).unwrap().to_string(), "2,4");
    }
}
