//! The `server.*` metric family, registered once per server instance.

use std::collections::HashMap;

use xarch_obs::{Counter, Gauge, Histogram, Obs, Timer};

/// Every verb that gets its own latency histogram
/// (`server.<verb>.duration`, microseconds).
pub(crate) const TIMED_VERBS: &[&str] = &[
    "hello",
    "ping",
    "retrieve",
    "as_of",
    "history",
    "history_values",
    "range",
    "diff",
    "stats",
    "latest",
    "ingest",
    "snap_open",
    "snap_close",
    "metrics",
    "health",
    "shutdown",
];

/// Atomic handles to the service metrics; cloning is cheap and
/// recording is lock-free, so every worker holds its own copy.
#[derive(Clone)]
pub(crate) struct ServerMetrics {
    /// `server.connections` — connections accepted since startup.
    pub connections: Counter,
    /// `server.connections_active` — connections currently open.
    pub connections_active: Gauge,
    /// `server.requests` — requests decoded and dispatched.
    pub requests: Counter,
    /// `server.rejected_frames` — frames refused before dispatch
    /// (oversized length prefix, bad CRC).
    pub rejected_frames: Counter,
    /// `server.errors` — structured error responses sent.
    pub errors: Counter,
    /// `server.in_flight` — requests currently being answered.
    pub in_flight: Gauge,
    /// `server.leases_open` — snapshot leases currently held.
    pub leases_open: Gauge,
    verbs: HashMap<&'static str, Histogram>,
}

impl ServerMetrics {
    pub(crate) fn register(obs: &Obs) -> Self {
        let r = obs.registry();
        let mut verbs = HashMap::new();
        for verb in TIMED_VERBS {
            verbs.insert(
                *verb,
                r.histogram(
                    &format!("server.{verb}.duration"),
                    "micros",
                    "time to answer one request of this verb",
                ),
            );
        }
        ServerMetrics {
            connections: r.counter(
                "server.connections",
                "connections",
                "connections accepted since startup",
            ),
            connections_active: r.gauge(
                "server.connections_active",
                "connections",
                "connections currently open",
            ),
            requests: r.counter(
                "server.requests",
                "requests",
                "requests decoded and dispatched",
            ),
            rejected_frames: r.counter(
                "server.rejected_frames",
                "frames",
                "frames refused before dispatch (oversize, bad crc)",
            ),
            errors: r.counter(
                "server.errors",
                "responses",
                "structured error responses sent",
            ),
            in_flight: r.gauge(
                "server.in_flight",
                "requests",
                "requests currently being answered",
            ),
            leases_open: r.gauge(
                "server.leases_open",
                "leases",
                "snapshot leases currently held across all connections",
            ),
            verbs,
        }
    }

    /// Starts the latency timer for `verb` (records on drop).
    pub(crate) fn verb_timer(&self, verb: &str) -> Option<Timer> {
        self.verbs.get(verb).map(|h| h.start_timer())
    }
}
