//! File-driven server configuration with startup validation.
//!
//! The format is deliberately plain `key = value` lines — no deps, no
//! surprises, line-numbered errors:
//!
//! ```text
//! # where to listen ("host:0" picks an ephemeral port)
//! listen = 127.0.0.1:7440
//! workers = 4
//! max_frame_len = 8388608
//! read_timeout_ms = 30000
//! write_timeout_ms = 30000
//! allow_shutdown = false
//!
//! # backend: memory | chunked:<n> | extmem, composable with the rest
//! backend = memory
//! indexed = true
//! durable = /var/lib/xarch/journal
//! checkpoint_every = 64
//!
//! # the governing key spec, one grammar line per `spec =` entry
//! spec = (/, (db, {}))
//! spec = (/db, (rec, {id}))
//! ```
//!
//! Every key is validated when the file is parsed, and the key spec is
//! parsed eagerly — a typo fails at startup with a line number, never
//! at first request.

use std::path::{Path, PathBuf};
use std::time::Duration;

use xarch::{ArchiveBuilder, Backend};
use xarch_extmem::IoConfig;
use xarch_keys::KeySpec;
use xarch_proto::MAX_FRAME_LEN;

/// A configuration file problem, with the line it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-indexed line in the config text, when attributable to one.
    pub line: Option<usize>,
    /// What is wrong.
    pub message: String,
}

impl ConfigError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        ConfigError {
            line: Some(line),
            message: message.into(),
        }
    }

    fn general(message: impl Into<String>) -> Self {
        ConfigError {
            line: None,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.line {
            Some(n) => write!(f, "config line {n}: {}", self.message),
            None => write!(f, "config: {}", self.message),
        }
    }
}

impl std::error::Error for ConfigError {}

/// The storage tier named in the config file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendChoice {
    /// `backend = memory` (the default).
    Memory,
    /// `backend = chunked:<n>` — `n` hash partitions.
    Chunked(usize),
    /// `backend = extmem` — the external-memory event-stream backend.
    ExtMem,
}

/// A validated server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7440` (`:0` = ephemeral).
    pub listen: String,
    /// Worker threads answering connections (≥ 1).
    pub workers: usize,
    /// Per-request frame-body ceiling in bytes, enforced before
    /// allocation; clamped to the protocol's `MAX_FRAME_LEN`.
    pub max_frame_len: u32,
    /// Socket read deadline per frame (`None` = unbounded).
    pub read_timeout: Option<Duration>,
    /// Socket write deadline per response (`None` = unbounded).
    pub write_timeout: Option<Duration>,
    /// Whether the `Shutdown` verb is honored (off by default).
    pub allow_shutdown: bool,
    /// The governing key spec, already parsed.
    pub spec: KeySpec,
    /// The spec's source text (echoed to clients in the handshake).
    pub spec_text: String,
    /// Storage tier.
    pub backend: BackendChoice,
    /// Maintain the §7 query indexes.
    pub indexed: bool,
    /// Journal path for crash-safe persistence.
    pub durable: Option<PathBuf>,
    /// Checkpoint cadence in committed versions (with `durable`).
    pub checkpoint_every: Option<u32>,
}

impl ServerConfig {
    /// Parses and validates config text. Every error carries the line
    /// that caused it.
    pub fn from_text(text: &str) -> Result<ServerConfig, ConfigError> {
        let mut listen = String::from("127.0.0.1:0");
        let mut workers = 4usize;
        let mut max_frame_len = MAX_FRAME_LEN;
        let mut read_timeout = Some(Duration::from_millis(30_000));
        let mut write_timeout = Some(Duration::from_millis(30_000));
        let mut allow_shutdown = false;
        let mut backend = BackendChoice::Memory;
        let mut indexed = false;
        let mut durable = None;
        let mut checkpoint_every = None;
        let mut spec_lines: Vec<(usize, String)> = Vec::new();

        for (idx, raw) in text.lines().enumerate() {
            let n = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError::at(
                    n,
                    format!("expected `key = value`, got `{line}`"),
                ));
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "listen" => {
                    if value.is_empty() {
                        return Err(ConfigError::at(n, "listen address must not be empty"));
                    }
                    listen = value.to_owned();
                }
                "workers" => {
                    workers = parse_num(n, key, value)?;
                    if workers == 0 {
                        return Err(ConfigError::at(n, "workers must be at least 1"));
                    }
                }
                "max_frame_len" => {
                    let v: u64 = parse_num(n, key, value)?;
                    if v < 64 {
                        return Err(ConfigError::at(
                            n,
                            "max_frame_len below 64 bytes cannot carry a handshake",
                        ));
                    }
                    max_frame_len =
                        u32::try_from(v.min(u64::from(MAX_FRAME_LEN))).unwrap_or(MAX_FRAME_LEN);
                }
                "read_timeout_ms" => read_timeout = parse_timeout(n, key, value)?,
                "write_timeout_ms" => write_timeout = parse_timeout(n, key, value)?,
                "allow_shutdown" => allow_shutdown = parse_bool(n, key, value)?,
                "indexed" => indexed = parse_bool(n, key, value)?,
                "backend" => {
                    backend = match value {
                        "memory" => BackendChoice::Memory,
                        "extmem" => BackendChoice::ExtMem,
                        other => match other.strip_prefix("chunked:") {
                            Some(count) => {
                                let c: usize = parse_num(n, "chunked partition count", count)?;
                                if c == 0 {
                                    return Err(ConfigError::at(
                                        n,
                                        "chunked backend needs at least one partition",
                                    ));
                                }
                                BackendChoice::Chunked(c)
                            }
                            None => {
                                return Err(ConfigError::at(
                                    n,
                                    format!(
                                        "unknown backend `{other}` \
                                         (expected memory, chunked:<n>, or extmem)"
                                    ),
                                ))
                            }
                        },
                    };
                }
                "durable" => {
                    if value.is_empty() {
                        return Err(ConfigError::at(n, "durable path must not be empty"));
                    }
                    durable = Some(PathBuf::from(value));
                }
                "checkpoint_every" => {
                    let v: u32 = parse_num(n, key, value)?;
                    checkpoint_every = (v > 0).then_some(v);
                }
                "spec" => spec_lines.push((n, value.to_owned())),
                "spec_file" => {
                    let loaded = std::fs::read_to_string(value).map_err(|e| {
                        ConfigError::at(n, format!("cannot read spec_file `{value}`: {e}"))
                    })?;
                    for l in loaded.lines() {
                        let l = l.trim();
                        if !l.is_empty() && !l.starts_with('#') {
                            spec_lines.push((n, l.to_owned()));
                        }
                    }
                }
                other => {
                    return Err(ConfigError::at(n, format!("unknown key `{other}`")));
                }
            }
        }

        if spec_lines.is_empty() {
            return Err(ConfigError::general(
                "no key spec: add at least one `spec = (...)` line (or a spec_file)",
            ));
        }
        let first_spec_line = spec_lines.first().map(|(n, _)| *n).unwrap_or(0);
        let spec_text = spec_lines
            .iter()
            .map(|(_, l)| l.as_str())
            .collect::<Vec<_>>()
            .join("\n");
        let spec = KeySpec::parse(&spec_text)
            .map_err(|e| ConfigError::at(first_spec_line, format!("invalid key spec: {e}")))?;
        if checkpoint_every.is_some() && durable.is_none() {
            return Err(ConfigError::general(
                "checkpoint_every is set but durable is not: checkpoints need a journal",
            ));
        }

        Ok(ServerConfig {
            listen,
            workers,
            max_frame_len,
            read_timeout,
            write_timeout,
            allow_shutdown,
            spec,
            spec_text,
            backend,
            indexed,
            durable,
            checkpoint_every,
        })
    }

    /// Reads and validates a config file.
    pub fn from_file(path: impl AsRef<Path>) -> Result<ServerConfig, ConfigError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| ConfigError::general(format!("cannot read `{}`: {e}", path.display())))?;
        ServerConfig::from_text(&text)
    }

    /// The [`ArchiveBuilder`] this configuration describes. The server
    /// calls `try_build_served` on it; tests can build the same store
    /// locally to compare answers.
    pub fn builder(&self) -> ArchiveBuilder {
        let mut b = ArchiveBuilder::new(self.spec.clone());
        b = match self.backend {
            BackendChoice::Memory => b,
            BackendChoice::Chunked(n) => b.chunks(n),
            BackendChoice::ExtMem => b.backend(Backend::ExtMem(IoConfig::default())),
        };
        if self.indexed {
            b = b.with_index();
        }
        if let Some(path) = &self.durable {
            b = b.durable(path.clone());
        }
        if let Some(n) = self.checkpoint_every {
            b = b.checkpoint_every(n);
        }
        b
    }
}

fn parse_num<T: std::str::FromStr>(n: usize, key: &str, value: &str) -> Result<T, ConfigError> {
    value.trim().parse().map_err(|_| {
        ConfigError::at(
            n,
            format!("{key} wants a non-negative integer, got `{value}`"),
        )
    })
}

fn parse_bool(n: usize, key: &str, value: &str) -> Result<bool, ConfigError> {
    match value {
        "true" | "yes" | "on" => Ok(true),
        "false" | "no" | "off" => Ok(false),
        other => Err(ConfigError::at(
            n,
            format!("{key} wants true/false, got `{other}`"),
        )),
    }
}

/// `0` disables the deadline; anything else is milliseconds.
fn parse_timeout(n: usize, key: &str, value: &str) -> Result<Option<Duration>, ConfigError> {
    let ms: u64 = parse_num(n, key, value)?;
    Ok((ms > 0).then(|| Duration::from_millis(ms)))
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# a comment
listen = 127.0.0.1:0
workers = 2
max_frame_len = 65536
read_timeout_ms = 100
write_timeout_ms = 0
allow_shutdown = yes
backend = chunked:8
indexed = true
spec = (/, (db, {}))
spec = (/db, (rec, {id}))
";

    #[test]
    fn parses_a_full_config() {
        let cfg = ServerConfig::from_text(GOOD).unwrap();
        assert_eq!(cfg.listen, "127.0.0.1:0");
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.max_frame_len, 65536);
        assert_eq!(cfg.read_timeout, Some(Duration::from_millis(100)));
        assert_eq!(cfg.write_timeout, None, "0 disables the deadline");
        assert!(cfg.allow_shutdown);
        assert_eq!(cfg.backend, BackendChoice::Chunked(8));
        assert!(cfg.indexed);
        assert!(cfg.spec_text.contains("rec"));
    }

    #[test]
    fn defaults_are_sane() {
        let cfg = ServerConfig::from_text("spec = (/, (db, {}))\n").unwrap();
        assert_eq!(cfg.workers, 4);
        assert!(!cfg.allow_shutdown);
        assert_eq!(cfg.backend, BackendChoice::Memory);
        assert_eq!(cfg.max_frame_len, MAX_FRAME_LEN);
    }

    #[test]
    fn every_bad_line_reports_its_number() {
        let cases = [
            ("listen 127.0.0.1\n", 1),
            ("workers = zero\nspec = x\n", 1),
            ("workers = 0\n", 1),
            ("\nmax_frame_len = 3\n", 2),
            ("backend = florp\n", 1),
            ("backend = chunked:0\n", 1),
            ("allow_shutdown = maybe\n", 1),
            ("mystery = 1\n", 1),
            ("spec = this is not a grammar\n", 1),
            ("durable = \n", 1),
        ];
        for (text, line) in cases {
            let err = ServerConfig::from_text(text).unwrap_err();
            assert_eq!(err.line, Some(line), "{text:?} → {err}");
        }
    }

    #[test]
    fn missing_spec_and_orphan_checkpoint_are_rejected() {
        let err = ServerConfig::from_text("workers = 2\n").unwrap_err();
        assert!(err.message.contains("spec"), "{err}");
        let err =
            ServerConfig::from_text("spec = (/, (db, {}))\ncheckpoint_every = 8\n").unwrap_err();
        assert!(err.message.contains("journal"), "{err}");
    }

    #[test]
    fn builder_reflects_the_backend_axes() {
        use xarch::StoreReader;
        let cfg = ServerConfig::from_text(GOOD).unwrap();
        // builds without error — the axes compose
        let (handle, _obs) = cfg.builder().try_build_served().unwrap();
        assert_eq!(handle.latest(), 0);
    }
}
