//! # xarch_server — the network archive service
//!
//! Serves a shared archive ([`xarch::ArchiveHandle`]) over TCP speaking
//! the [`xarch_proto`] wire protocol: the full `StoreReader` query
//! surface, batched group-committed ingest, snapshot leases, and an
//! admin/ops surface (ping, Prometheus metrics, health, optional remote
//! shutdown). Pure `std::net` — the workspace is offline and
//! path-deps-only, so there is no async runtime; concurrency comes from
//! a bounded worker-thread pool, which is exactly the paper's serving
//! shape anyway: many readers each pinning a consistent [`Snapshot`]
//! while one curator appends versions behind them.
//!
//! The serving contract, in one paragraph: every query request is
//! answered from a *pinned snapshot* — either a fresh pin taken for
//! that one request (lease 0) or a client-held lease opened with
//! `SnapOpen` — so readers never block the curator's batch ingest and
//! never observe a half-applied batch; frames are bounded by a
//! configured byte ceiling enforced *before* allocation; socket
//! deadlines bound how long a stalled peer can hold a worker; and every
//! rejection is loud (a structured error on the wire plus a
//! [`xarch_obs`] event and a `server.*` metric).
//!
//! ```no_run
//! use xarch_server::{Server, ServerConfig};
//!
//! let cfg = ServerConfig::from_text(
//!     "listen = 127.0.0.1:0\n\
//!      workers = 4\n\
//!      spec = (/, (db, {}))\n\
//!      spec = (/db, (rec, {id}))\n",
//! )?;
//! let server = Server::start(cfg)?;
//! println!("serving on {}", server.addr());
//! server.wait();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`Snapshot`]: xarch::Snapshot

#![warn(missing_docs)]

pub mod config;
mod metrics;
pub mod serve;

pub use config::{ConfigError, ServerConfig};
pub use serve::{RunningServer, Server, ServerError};
