//! The listener, the bounded worker pool, and the request loop.
//!
//! Topology: one acceptor thread pushes accepted sockets into a bounded
//! queue; `workers` threads each pull a socket and own that connection
//! until it closes (the protocol is strictly call-and-answer, so a
//! worker serves exactly one request at a time and per-connection state
//! — handshake status, snapshot leases — needs no synchronization).
//! When the queue is full the acceptor blocks, so a flood of
//! connections backs up into the TCP accept queue instead of spawning
//! unbounded threads.
//!
//! Robustness rules, mirrored by the torture tests in
//! `tests/service.rs`:
//!
//! * frames above the configured ceiling are refused *before* the body
//!   is read or allocated — the peer gets a `frame-too-large` error and
//!   the connection is dropped (the stream can no longer be trusted to
//!   be frame-aligned);
//! * a CRC mismatch gets a `bad-frame` error and likewise drops the
//!   connection;
//! * an unknown verb or an undecodable payload is answered with a
//!   structured error and the connection *survives* — framing is still
//!   sound;
//! * every query runs against a pinned snapshot — fresh pins and lease
//!   opens are a single atomic load of the handle's published version,
//!   so no worker (and therefore no client) ever waits behind an
//!   in-flight merge, and a writer fault can never take the read side
//!   of the service down;
//! * every non-`Hello` request before the handshake is refused with
//!   `need-hello`;
//! * nothing in this path panics: a worker survives any byte sequence a
//!   peer can send.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use xarch::{ArchiveHandle, Snapshot, StoreError, StoreReader};
use xarch_obs::{Level, Obs};
use xarch_proto::frame::{read_frame, write_frame, FrameError};
use xarch_proto::msg::{negotiate, DecodeError, ErrorCode, Health, Hello, Request, Response};
use xarch_xml::writer::to_compact_string;

use crate::config::ServerConfig;
use crate::metrics::ServerMetrics;

/// Why the server could not start.
#[derive(Debug)]
pub enum ServerError {
    /// Binding or configuring the listener failed.
    Io(std::io::Error),
    /// The configured archive backend failed to build.
    Store(StoreError),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "cannot start server: {e}"),
            ServerError::Store(e) => write!(f, "cannot build archive: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<StoreError> for ServerError {
    fn from(e: StoreError) -> Self {
        ServerError::Store(e)
    }
}

/// Everything a worker needs, shared immutably across the pool.
struct Ctx {
    handle: ArchiveHandle,
    obs: Obs,
    metrics: ServerMetrics,
    spec_text: String,
    max_frame_len: u32,
    read_timeout: Option<std::time::Duration>,
    write_timeout: Option<std::time::Duration>,
    allow_shutdown: bool,
    shutting_down: AtomicBool,
    addr: SocketAddr,
}

impl Ctx {
    /// Flips the shutdown flag and unblocks the acceptor with a
    /// throwaway connection so it can observe the flag.
    fn begin_shutdown(&self) {
        if !self.shutting_down.swap(true, Ordering::SeqCst) {
            self.obs
                .event(Level::Info, "server", &[("shutdown", "begun".into())]);
            // poke the blocking accept(); errors are irrelevant — if the
            // connect fails the listener is already gone
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// The entry point: build the archive, bind, spawn the pool.
pub struct Server;

impl Server {
    /// Builds the configured archive, binds the listener, and starts
    /// the acceptor and worker threads. Returns once the socket is
    /// listening; the returned [`RunningServer`] controls the rest of
    /// the lifecycle.
    pub fn start(cfg: ServerConfig) -> Result<RunningServer, ServerError> {
        let (handle, obs) = cfg.builder().try_build_served()?;
        Server::serve(cfg, handle, obs)
    }

    /// Like [`Server::start`], but over an archive the caller already
    /// built (and possibly pre-populated) with
    /// `ArchiveBuilder::try_build_served`.
    pub fn serve(
        cfg: ServerConfig,
        handle: ArchiveHandle,
        obs: Obs,
    ) -> Result<RunningServer, ServerError> {
        let listener = TcpListener::bind(&cfg.listen)?;
        let addr = listener.local_addr()?;
        let metrics = ServerMetrics::register(&obs);
        let spec_text = cfg.spec_text.clone();
        let ctx = Arc::new(Ctx {
            handle,
            obs,
            metrics,
            spec_text,
            max_frame_len: cfg.max_frame_len,
            read_timeout: cfg.read_timeout,
            write_timeout: cfg.write_timeout,
            allow_shutdown: cfg.allow_shutdown,
            shutting_down: AtomicBool::new(false),
            addr,
        });

        // bounded hand-off queue: a full queue blocks the acceptor, so
        // overload backs up into the TCP backlog, never into memory
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(cfg.workers * 2);
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(cfg.workers);
        for i in 0..cfg.workers {
            let rx = Arc::clone(&rx);
            let ctx = Arc::clone(&ctx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("xarch-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &ctx))?,
            );
        }
        let acceptor = {
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name("xarch-acceptor".into())
                .spawn(move || accept_loop(&listener, &tx, &ctx))?
        };
        ctx.obs.event(
            Level::Info,
            "server",
            &[
                ("listening", addr.to_string()),
                ("workers", cfg.workers.to_string()),
            ],
        );
        Ok(RunningServer {
            ctx,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

/// A started server: its address and its lifecycle.
pub struct RunningServer {
    ctx: Arc<Ctx>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl RunningServer {
    /// The bound address (resolves `:0` to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.ctx.addr
    }

    /// The archive being served — the curator side of the deployment:
    /// ingest through this handle while clients query over the wire.
    pub fn handle(&self) -> &ArchiveHandle {
        &self.ctx.handle
    }

    /// The observability instance every layer reports into.
    pub fn obs(&self) -> &Obs {
        &self.ctx.obs
    }

    /// Whether shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.ctx.shutting_down.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting, let every in-flight request
    /// finish, join the pool. Committed ingest is already on disk — the
    /// journal group-commits synchronously — so draining the workers is
    /// the whole story. Idempotent.
    pub fn shutdown(&mut self) {
        self.ctx.begin_shutdown();
        self.join_all();
        self.ctx
            .obs
            .event(Level::Info, "server", &[("shutdown", "complete".into())]);
    }

    /// Blocks until the server shuts down (via [`RunningServer::shutdown`]
    /// or a client's `Shutdown` verb with `allow_shutdown = true`).
    pub fn wait(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.ctx.begin_shutdown();
        self.join_all();
    }
}

fn accept_loop(listener: &TcpListener, tx: &SyncSender<TcpStream>, ctx: &Ctx) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) => {
                if ctx.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                ctx.obs
                    .event(Level::Warn, "server", &[("accept_error", e.to_string())]);
                continue;
            }
        };
        if ctx.shutting_down.load(Ordering::SeqCst) {
            // the poke connection (or a late arrival): refuse politely
            drop(stream);
            break;
        }
        if tx.send(stream).is_err() {
            break;
        }
    }
    // dropping tx here disconnects the queue; workers drain what was
    // already accepted and then exit
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, ctx: &Ctx) {
    loop {
        let next = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => break, // a sibling worker panicked holding the lock
        };
        match next {
            Ok(stream) => handle_connection(stream, ctx),
            Err(_) => break, // acceptor gone and queue drained
        }
    }
}

fn handle_connection(stream: TcpStream, ctx: &Ctx) {
    ctx.metrics.connections.inc();
    ctx.metrics.connections_active.add(1);
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".into());
    ctx.obs
        .event(Level::Debug, "server", &[("conn_open", peer.clone())]);
    let leases_at_exit = serve_connection(stream, ctx, &peer).unwrap_or(0);
    // leases die with the connection; keep the gauge honest
    if leases_at_exit > 0 {
        ctx.metrics.leases_open.add(-(leases_at_exit as i64));
    }
    ctx.metrics.connections_active.add(-1);
    ctx.obs
        .event(Level::Debug, "server", &[("conn_close", peer)]);
}

/// Per-connection protocol state.
struct ConnState {
    hello_done: bool,
    leases: HashMap<u64, Snapshot>,
    next_lease: u64,
}

/// What a request outcome means for the connection.
enum After {
    Keep,
    Drop,
}

/// Runs one connection to completion; returns how many leases were
/// still open when it ended (for gauge cleanup). `None` only when the
/// socket could not even be configured.
fn serve_connection(stream: TcpStream, ctx: &Ctx, peer: &str) -> Option<u64> {
    if stream.set_nodelay(true).is_err()
        || stream.set_read_timeout(ctx.read_timeout).is_err()
        || stream.set_write_timeout(ctx.write_timeout).is_err()
    {
        return None;
    }
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return None,
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut state = ConnState {
        hello_done: false,
        leases: HashMap::new(),
        next_lease: 1,
    };

    loop {
        if ctx.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let body = match read_frame(&mut reader, ctx.max_frame_len) {
            Ok(body) => body,
            Err(FrameError::Eof) => break,
            Err(e @ FrameError::TooLarge { .. }) => {
                ctx.metrics.rejected_frames.inc();
                ctx.obs.event(
                    Level::Warn,
                    "server",
                    &[("rejected_frame", e.to_string()), ("peer", peer.to_owned())],
                );
                send_error(&mut writer, ctx, ErrorCode::FrameTooLarge, &e.to_string());
                break; // cannot trust frame alignment past an unread body
            }
            Err(e @ FrameError::BadCrc { .. }) => {
                ctx.metrics.rejected_frames.inc();
                ctx.obs.event(
                    Level::Warn,
                    "server",
                    &[("rejected_frame", e.to_string()), ("peer", peer.to_owned())],
                );
                send_error(&mut writer, ctx, ErrorCode::BadFrame, &e.to_string());
                break;
            }
            Err(FrameError::Io(e)) => {
                ctx.obs.event(
                    Level::Debug,
                    "server",
                    &[("conn_io", e.to_string()), ("peer", peer.to_owned())],
                );
                break;
            }
        };
        let req = match Request::decode(&body) {
            Ok(req) => req,
            Err(DecodeError::UnknownTag(t)) => {
                send_error(
                    &mut writer,
                    ctx,
                    ErrorCode::UnknownVerb,
                    &format!("verb byte {t:#04x} is not assigned"),
                );
                continue; // framing is still sound
            }
            Err(e) => {
                send_error(&mut writer, ctx, ErrorCode::BadPayload, &e.to_string());
                continue;
            }
        };
        ctx.metrics.requests.inc();
        ctx.metrics.in_flight.add(1);
        let timer = ctx.metrics.verb_timer(req.verb_name());
        let (resp, after) = answer(req, &mut state, ctx, peer);
        drop(timer);
        ctx.metrics.in_flight.add(-1);
        if matches!(resp, Response::Error { .. }) {
            ctx.metrics.errors.inc();
        }
        if write_frame(&mut writer, &resp.encode()).is_err() {
            break;
        }
        if matches!(after, After::Drop) {
            break;
        }
    }
    Some(state.leases.len() as u64)
}

/// Sends a structured error outside the normal dispatch path (framing
/// and decode failures). Write failures are moot — the connection is
/// about to drop anyway.
fn send_error(w: &mut impl Write, ctx: &Ctx, code: ErrorCode, message: &str) {
    ctx.metrics.errors.inc();
    let resp = Response::Error {
        code,
        message: message.to_owned(),
    };
    let _ = write_frame(w, &resp.encode());
}

/// Answers one decoded request. Never panics; every failure path is a
/// structured error.
fn answer(req: Request, state: &mut ConnState, ctx: &Ctx, peer: &str) -> (Response, After) {
    // the handshake gate: everything but Hello needs a completed hello
    if !state.hello_done && !matches!(req, Request::Hello { .. }) {
        return (
            Response::Error {
                code: ErrorCode::NeedHello,
                message: "handshake required before any other verb".into(),
            },
            After::Keep,
        );
    }
    match req {
        Request::Hello { min, max } => match negotiate(min, max) {
            Some(version) => {
                state.hello_done = true;
                (
                    Response::Hello(Hello {
                        version,
                        spec: ctx.spec_text.clone(),
                        latest: ctx.handle.latest(),
                    }),
                    After::Keep,
                )
            }
            None => {
                ctx.obs.event(
                    Level::Warn,
                    "server",
                    &[
                        (
                            "handshake_mismatch",
                            format!("client offered {min}..={max}"),
                        ),
                        ("peer", peer.to_owned()),
                    ],
                );
                (
                    Response::Error {
                        code: ErrorCode::VersionMismatch,
                        message: format!(
                            "no common protocol revision: client {min}..={max}, \
                             server {}..={}",
                            xarch_proto::MIN_PROTO_VERSION,
                            xarch_proto::PROTO_VERSION
                        ),
                    },
                    After::Drop,
                )
            }
        },
        Request::Ping => (Response::Pong, After::Keep),
        Request::Retrieve { lease, v } => with_snapshot(state, ctx, lease, |snap| {
            let mut buf = Vec::new();
            let found = snap.retrieve_into(v, &mut buf)?;
            if !found {
                return Ok(Response::Document(None));
            }
            match String::from_utf8(buf) {
                Ok(xml) => Ok(Response::Document(Some(xml))),
                Err(_) => Err(StoreError::Backend(
                    "retrieved document is not utf-8".into(),
                )),
            }
        }),
        Request::AsOf { lease, v, steps } => with_snapshot(state, ctx, lease, |snap| {
            let doc = snap.as_of(&steps, v)?;
            Ok(Response::Document(doc.map(|d| to_compact_string(&d))))
        }),
        Request::History { lease, steps } => with_snapshot(state, ctx, lease, |snap| {
            Ok(Response::History(snap.history(&steps)?))
        }),
        Request::HistoryValues { lease, steps } => with_snapshot(state, ctx, lease, |snap| {
            Ok(Response::HistoryValues(snap.history_values(&steps)?))
        }),
        Request::Range {
            lease,
            lo,
            hi,
            prefix,
        } => with_snapshot(state, ctx, lease, |snap| {
            Ok(Response::Range(snap.range(&prefix, lo..=hi)?))
        }),
        Request::Diff {
            lease,
            v1,
            v2,
            steps,
        } => with_snapshot(state, ctx, lease, |snap| {
            Ok(Response::Diff(snap.diff(&steps, v1, v2)?))
        }),
        Request::Stats { lease } => {
            with_snapshot(state, ctx, lease, |snap| Ok(Response::Stats(snap.stats()?)))
        }
        Request::Latest { lease } => with_snapshot(state, ctx, lease, |snap| {
            Ok(Response::Latest(snap.latest()))
        }),
        Request::Ingest { docs } => {
            let mut parsed = Vec::new();
            for (i, text) in docs.iter().enumerate() {
                match xarch_xml::parse(text) {
                    Ok(doc) => parsed.push(doc),
                    Err(e) => {
                        return (
                            Response::Error {
                                code: ErrorCode::BadPayload,
                                message: format!("ingest document {i} does not parse: {e}"),
                            },
                            After::Keep,
                        )
                    }
                }
            }
            match ctx.handle.add_versions(&parsed) {
                Ok(versions) => (Response::Ingested(versions), After::Keep),
                Err(e) => (
                    Response::Error {
                        code: ErrorCode::Store,
                        message: e.to_string(),
                    },
                    After::Keep,
                ),
            }
        }
        Request::SnapOpen => {
            let snap = ctx.handle.snapshot();
            let pinned = snap.pinned();
            let lease = state.next_lease;
            state.next_lease += 1;
            state.leases.insert(lease, snap);
            ctx.metrics.leases_open.add(1);
            (Response::SnapOpened { lease, pinned }, After::Keep)
        }
        Request::SnapClose { lease } => match state.leases.remove(&lease) {
            Some(_) => {
                ctx.metrics.leases_open.add(-1);
                (Response::SnapClosed, After::Keep)
            }
            None => (
                Response::Error {
                    code: ErrorCode::NoSuchLease,
                    message: format!("lease {lease} is not held by this connection"),
                },
                After::Keep,
            ),
        },
        Request::Metrics => (Response::Metrics(ctx.obs.render_prometheus()), After::Keep),
        Request::Health => {
            let gauge_u64 = |v: i64| u64::try_from(v).unwrap_or(0);
            (
                Response::Health(Health {
                    ok: !ctx.shutting_down.load(Ordering::SeqCst),
                    latest: ctx.handle.latest(),
                    in_flight: gauge_u64(ctx.metrics.in_flight.get()),
                    leases: gauge_u64(ctx.metrics.leases_open.get()),
                    served: ctx.metrics.requests.get(),
                }),
                After::Keep,
            )
        }
        Request::Shutdown => {
            if ctx.allow_shutdown {
                ctx.begin_shutdown();
                (Response::ShuttingDown, After::Drop)
            } else {
                (
                    Response::Error {
                        code: ErrorCode::ShutdownRefused,
                        message: "remote shutdown is disabled (allow_shutdown = false)".into(),
                    },
                    After::Keep,
                )
            }
        }
    }
}

/// Resolves the lease (0 = fresh pin) and runs `f` against the
/// snapshot, mapping `StoreError` to a structured `store` error. A
/// fresh pin is wait-free (one atomic load of the published version),
/// and a held lease answers exactly as it did when opened — concurrent
/// ingest through the same handle never blocks or perturbs either path.
fn with_snapshot(
    state: &ConnState,
    ctx: &Ctx,
    lease: u64,
    f: impl FnOnce(&Snapshot) -> Result<Response, StoreError>,
) -> (Response, After) {
    let fresh;
    let snap = if lease == 0 {
        fresh = ctx.handle.snapshot();
        &fresh
    } else {
        match state.leases.get(&lease) {
            Some(snap) => snap,
            None => {
                return (
                    Response::Error {
                        code: ErrorCode::NoSuchLease,
                        message: format!("lease {lease} is not held by this connection"),
                    },
                    After::Keep,
                )
            }
        }
    };
    match f(snap) {
        Ok(resp) => (resp, After::Keep),
        Err(e) => (
            Response::Error {
                code: ErrorCode::Store,
                message: e.to_string(),
            },
            After::Keep,
        ),
    }
}
