//! `xarch-server` — serve an archive over TCP from a config file.
//!
//! ```text
//! xarch-server <config-file>
//! ```
//!
//! Reads and validates the config (see [`xarch_server::config`] for the
//! format), builds the archive backend it describes, binds the listener,
//! prints the bound address to stdout (one line, so scripts can scrape
//! the ephemeral port), and serves until shut down — either remotely
//! via the protocol's `Shutdown` verb (only when the config sets
//! `allow_shutdown = true`) or by killing the process; the journal is
//! group-committed, so an archive that answered an ingest has it on
//! disk regardless.

use std::process::ExitCode;

use xarch_server::{Server, ServerConfig};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(config_path), None) = (args.next(), args.next()) else {
        eprintln!("usage: xarch-server <config-file>");
        return ExitCode::from(2);
    };
    let cfg = match ServerConfig::from_file(&config_path) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("xarch-server: {config_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::start(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("xarch-server: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.addr());
    server.wait();
    ExitCode::SUCCESS
}
